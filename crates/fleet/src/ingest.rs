//! The thread-per-core ingest pipeline.
//!
//! [`FleetIngest`] fronts one [`CollectionServer`] per cohort with a pool
//! of pinned ingest workers. Producers (device agents, or the driver
//! threads standing in for a million of them) go through a two-step
//! protocol:
//!
//! 1. [`admit`](FleetIngest::admit) — the admission decision:
//!    server-level backpressure ([`accepting`]), the shed frontier
//!    (queue-depth graduated, newest cohorts first), the per-cohort token
//!    bucket, and a queue-full check, in that order;
//! 2. [`submit`](FleetIngest::submit) — hand the encoded upload stream to
//!    the cohort's worker over a bounded channel.
//!
//! Each worker owns its receive queue outright: it decodes streams with
//! the zero-alloc [`decode_batch_into`] *outside* any shard lock and
//! commits via [`store_batch`], which takes each stripe lock once per
//! contiguous run. Cohort → worker assignment is static (`cohort mod
//! workers`), so one cohort's batches are never reordered against each
//! other — the per-device arrival order the dedup/journal path relies on
//! survives the fan-out.
//!
//! [`CollectionServer`]: mobitrace_collector::CollectionServer
//! [`accepting`]: mobitrace_collector::CollectionServer::accepting
//! [`decode_batch_into`]: mobitrace_collector::decode_batch_into
//! [`store_batch`]: mobitrace_collector::CollectionServer::store_batch

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::{bounded, Sender};
use mobitrace_collector::{decode_batch_into, CollectionServer};
use mobitrace_model::{DeviceId, Record};
use parking_lot::Mutex;

use crate::admission::{is_shed, shed_level, TokenBucket};
use crate::router::CohortRouter;

/// Fleet pipeline shape and admission policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Independent ingest domains (servers). At least 1.
    pub cohorts: usize,
    /// Ingest workers; 0 = one per available core (capped at 8).
    pub workers: usize,
    /// Bounded per-worker queue depth, in batches. At least 1.
    pub queue_cap: usize,
    /// Token-bucket sustained rate per cohort, records/s; <= 0 unlimited.
    pub rate_per_cohort: f64,
    /// Token-bucket burst per cohort, records.
    pub burst: f64,
    /// Per-cohort server soft record limit (0 disables) — the server-level
    /// backpressure admission forwards to agents.
    pub soft_limit: usize,
    /// Journal cohort servers (required for crash/recover chaos).
    pub journal: bool,
    /// Shards per cohort server; 0 = server default.
    pub server_shards: usize,
    /// Pin worker threads to cores (best effort, Linux only).
    pub pin_workers: bool,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            cohorts: 4,
            workers: 0,
            queue_cap: 256,
            rate_per_cohort: 0.0,
            burst: 50_000.0,
            soft_limit: 0,
            journal: false,
            server_shards: 0,
            pin_workers: true,
        }
    }
}

/// Number of workers a config resolves to on this machine.
pub fn resolve_workers(cfg_workers: usize) -> usize {
    if cfg_workers > 0 {
        cfg_workers
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get()).min(8)
    }
}

/// The admission decision for one agent's pending upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueue via [`FleetIngest::submit`].
    Admit,
    /// Refuse and keep the data on the device: the agent must be told via
    /// `note_server_reject` so its backoff opens.
    Backpressure,
    /// Drop the upload and account it via [`FleetIngest::account_shed`].
    Shed,
}

/// One enqueued upload: a contiguous frame stream from a single device.
struct Batch {
    cohort: u32,
    stream: Bytes,
    enqueued: Instant,
}

#[derive(Default)]
struct WorkerOut {
    latencies_s: Vec<f32>,
    committed: u64,
    duplicates: u64,
    lost_crash: u64,
    rejected_streams: u64,
    batches: u64,
}

/// The running fleet pipeline (see module docs).
pub struct FleetIngest {
    cfg: FleetConfig,
    router: CohortRouter,
    servers: Arc<Vec<Arc<CollectionServer>>>,
    buckets: Vec<Mutex<TokenBucket>>,
    shed: Vec<AtomicU64>,
    txs: Vec<Sender<Batch>>,
    depth: Vec<Arc<AtomicUsize>>,
    paused: Arc<AtomicBool>,
    workers: Vec<JoinHandle<WorkerOut>>,
    n_workers: usize,
    backpressure_signals: AtomicU64,
    enqueued_records: AtomicU64,
}

impl FleetIngest {
    /// Build the servers and spawn the worker pool.
    pub fn new(cfg: FleetConfig) -> FleetIngest {
        assert!(cfg.cohorts >= 1 && cfg.queue_cap >= 1);
        let router = CohortRouter::new(cfg.cohorts);
        let servers: Arc<Vec<Arc<CollectionServer>>> = Arc::new(
            (0..cfg.cohorts)
                .map(|_| {
                    let s = if cfg.server_shards > 0 {
                        CollectionServer::with_shards(cfg.server_shards)
                    } else {
                        CollectionServer::new()
                    };
                    let s = if cfg.journal { s.with_journal() } else { s };
                    s.set_soft_limit(cfg.soft_limit);
                    Arc::new(s)
                })
                .collect(),
        );
        let buckets = (0..cfg.cohorts)
            .map(|_| Mutex::new(TokenBucket::new(cfg.rate_per_cohort, cfg.burst)))
            .collect();
        let shed = (0..cfg.cohorts).map(|_| AtomicU64::new(0)).collect();
        let n_workers = resolve_workers(cfg.workers);
        let paused = Arc::new(AtomicBool::new(false));
        let mut txs = Vec::with_capacity(n_workers);
        let mut depth = Vec::with_capacity(n_workers);
        let mut workers = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let (tx, rx) = bounded::<Batch>(cfg.queue_cap);
            let d = Arc::new(AtomicUsize::new(0));
            let servers = Arc::clone(&servers);
            let depth_w = Arc::clone(&d);
            let paused_w = Arc::clone(&paused);
            let pin = cfg.pin_workers;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fleet-ingest-{w}"))
                    .spawn(move || {
                        if pin {
                            // Best effort: on a smaller machine the core
                            // may not exist, and that is fine.
                            let _ = affinity::pin_to_core(w);
                        }
                        let mut out = WorkerOut::default();
                        while let Ok(batch) = rx.recv() {
                            while paused_w.load(Ordering::Relaxed) {
                                std::thread::sleep(std::time::Duration::from_millis(1));
                            }
                            depth_w.fetch_sub(1, Ordering::Relaxed);
                            let server = &servers[batch.cohort as usize];
                            let mut stream = batch.stream;
                            let mut records: Vec<Record> = Vec::new();
                            if decode_batch_into(&mut stream, &mut records).is_err() {
                                out.rejected_streams += 1;
                            }
                            let n = records.len() as u64;
                            if server.is_crashed() {
                                // Admission pre-checks `accepting`, so this
                                // is the crash landing mid-flight; the whole
                                // delivery is lost and counted per record.
                                out.lost_crash += n;
                            } else {
                                let stored = server.store_batch(records) as u64;
                                out.committed += stored;
                                out.duplicates += n - stored;
                            }
                            out.batches += 1;
                            out.latencies_s.push(batch.enqueued.elapsed().as_secs_f32());
                        }
                        out
                    })
                    .expect("spawn fleet worker"),
            );
            txs.push(tx);
            depth.push(d);
        }
        FleetIngest {
            cfg,
            router,
            servers,
            buckets,
            shed,
            txs,
            depth,
            paused,
            workers,
            n_workers,
            backpressure_signals: AtomicU64::new(0),
            enqueued_records: AtomicU64::new(0),
        }
    }

    /// The router (for cohort lookups without an admission decision).
    pub fn router(&self) -> &CohortRouter {
        &self.router
    }

    /// The per-cohort servers, in cohort order (chaos controllers crash,
    /// recover and squeeze them through this).
    pub fn servers(&self) -> &[Arc<CollectionServer>] {
        &self.servers
    }

    /// Ingest workers actually running.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    fn worker_of(&self, cohort: u32) -> usize {
        cohort as usize % self.n_workers
    }

    /// Decide admission for `n_records` pending on `device` at `now_s`
    /// (seconds on any monotonic clock; feeds the token buckets). Returns
    /// the device's cohort alongside the decision; the caller completes
    /// the protocol (`submit`, `account_shed`, or agent backoff +
    /// [`note_backpressure`](FleetIngest::note_backpressure)).
    pub fn admit(&self, device: DeviceId, n_records: u32, now_s: f64) -> (u32, Admission) {
        let cohort = self.router.cohort_of(device);
        if !self.servers[cohort as usize].accepting() {
            return (cohort, Admission::Backpressure);
        }
        // The bucket is the cohort's rate contract and is consulted
        // before the queue-depth shed frontier: rate-limited traffic is
        // *refused* (kept on the device, retried after backoff) so the
        // bucket protects the queues, and shedding stays the emergency
        // valve for load the contract admitted but the workers cannot
        // absorb.
        if self.cfg.rate_per_cohort > 0.0
            && !self.buckets[cohort as usize].lock().try_take(f64::from(n_records), now_s)
        {
            return (cohort, Admission::Backpressure);
        }
        let w = self.worker_of(cohort);
        let fill = self.depth[w].load(Ordering::Relaxed) as f64 / self.cfg.queue_cap as f64;
        let level = shed_level(self.router.n_cohorts(), fill);
        if is_shed(cohort as usize, self.router.n_cohorts(), level) {
            return (cohort, Admission::Shed);
        }
        if self.depth[w].load(Ordering::Relaxed) >= self.cfg.queue_cap {
            return (cohort, Admission::Backpressure);
        }
        (cohort, Admission::Admit)
    }

    /// Enqueue an admitted upload stream for `cohort`. May briefly block
    /// if a race filled the queue after `admit` — the bounded channel is
    /// the hard limit the depth check only approximates.
    pub fn submit(&self, cohort: u32, n_records: u32, stream: Bytes) {
        let w = self.worker_of(cohort);
        self.depth[w].fetch_add(1, Ordering::Relaxed);
        self.enqueued_records.fetch_add(u64::from(n_records), Ordering::Relaxed);
        if self.txs[w].send(Batch { cohort, stream, enqueued: Instant::now() }).is_err() {
            panic!("fleet worker alive");
        }
    }

    /// Account `n_records` shed for `cohort`. Every record a producer
    /// drops on a `Shed` decision must pass through here — the
    /// reconciliation invariant counts on it.
    pub fn account_shed(&self, cohort: u32, n_records: u32) {
        self.shed[cohort as usize].fetch_add(u64::from(n_records), Ordering::Relaxed);
    }

    /// Count one backpressure refusal (paired with the agent's
    /// `note_server_reject`).
    pub fn note_backpressure(&self) {
        self.backpressure_signals.fetch_add(1, Ordering::Relaxed);
    }

    /// Stall the workers (simulated downstream hang): queues fill, the
    /// shed frontier advances. Chaos/test hook.
    pub fn pause_workers(&self) {
        self.paused.store(true, Ordering::Relaxed);
    }

    /// Resume stalled workers.
    pub fn resume_workers(&self) {
        self.paused.store(false, Ordering::Relaxed);
    }

    /// Records shed so far, newest cohort included.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Close the intake, drain the queues, join the workers and fold
    /// their counters.
    pub fn finish(mut self) -> FleetStats {
        self.resume_workers();
        self.txs.clear(); // disconnect: workers drain and exit
        let mut latencies_s = Vec::new();
        let (mut committed, mut duplicates, mut lost_crash) = (0u64, 0u64, 0u64);
        let (mut rejected_streams, mut batches) = (0u64, 0u64);
        for h in self.workers.drain(..) {
            let out = h.join().expect("fleet worker panicked");
            latencies_s.extend_from_slice(&out.latencies_s);
            committed += out.committed;
            duplicates += out.duplicates;
            lost_crash += out.lost_crash;
            rejected_streams += out.rejected_streams;
            batches += out.batches;
        }
        latencies_s.sort_unstable_by(f32::total_cmp);
        let shed_by_cohort: Vec<u64> =
            self.shed.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let crashes = self.servers.iter().map(|s| s.stats().crashes).sum();
        let servers = Arc::try_unwrap(std::mem::take(&mut self.servers))
            .expect("workers joined; no other owner");
        FleetStats {
            committed,
            duplicates,
            lost_crash,
            rejected_streams,
            batches,
            shed_records: shed_by_cohort.iter().sum(),
            shed_by_cohort,
            backpressure_signals: self.backpressure_signals.load(Ordering::Relaxed),
            enqueued_records: self.enqueued_records.load(Ordering::Relaxed),
            crashes,
            latencies_s,
            servers,
        }
    }
}

impl Drop for FleetIngest {
    fn drop(&mut self) {
        // `finish` drains these; a dropped-without-finish pipeline must
        // not leave workers blocked on recv forever.
        self.paused.store(false, Ordering::Relaxed);
        self.txs.clear();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Folded pipeline counters after [`FleetIngest::finish`].
pub struct FleetStats {
    /// Newly stored records across all cohorts.
    pub committed: u64,
    /// Records refused as duplicates by cohort servers.
    pub duplicates: u64,
    /// Records lost to a crash landing between admission and commit.
    pub lost_crash: u64,
    /// Streams that failed to decode (should be zero with healthy agents).
    pub rejected_streams: u64,
    /// Batches processed.
    pub batches: u64,
    /// Records shed, total.
    pub shed_records: u64,
    /// Records shed, per cohort (newest cohorts shed first).
    pub shed_by_cohort: Vec<u64>,
    /// Backpressure refusals signalled to agents.
    pub backpressure_signals: u64,
    /// Records handed to `submit`.
    pub enqueued_records: u64,
    /// Server crash count (chaos).
    pub crashes: u64,
    /// Enqueue→commit latencies, seconds, sorted ascending.
    pub latencies_s: Vec<f32>,
    /// The cohort servers, for record extraction.
    pub servers: Vec<Arc<CollectionServer>>,
}

impl FleetStats {
    /// Latency quantile `q` in [0, 1], seconds; 0 when nothing committed.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        if self.latencies_s.is_empty() {
            return 0.0;
        }
        let i = ((self.latencies_s.len() - 1) as f64 * q).round() as usize;
        f64::from(self.latencies_s[i])
    }

    /// Drain every cohort server and merge into one (device, seq)-sorted
    /// record vector — the shape [`clean`](mobitrace_collector::clean)
    /// requires, and the basis of the fleet-vs-batch determinism proof.
    pub fn into_records(self) -> Vec<Record> {
        let mut all: Vec<Record> = Vec::new();
        for server in self.servers {
            let server = Arc::try_unwrap(server).expect("stats own the servers");
            all.extend(server.into_records());
        }
        all.sort_unstable_by_key(|r| (r.device, r.seq));
        all
    }
}

#[cfg(target_os = "linux")]
mod affinity {
    //! Best-effort CPU pinning via a direct syscall-wrapper binding (the
    //! build has no libc crate; same pattern as the pool crate's mmap
    //! bindings).

    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    /// Pin the calling thread to `core`. Returns whether the kernel
    /// accepted the mask.
    pub fn pin_to_core(core: usize) -> bool {
        let mut mask = [0u64; 16]; // cpu_set_t for up to 1024 CPUs
        let (word, bit) = (core / 64, core % 64);
        if word >= mask.len() {
            return false;
        }
        mask[word] = 1u64 << bit;
        // SAFETY: pid 0 targets the calling thread; the mask pointer and
        // size describe a live, correctly sized buffer.
        unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
    }
}

#[cfg(not(target_os = "linux"))]
mod affinity {
    pub fn pin_to_core(_core: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use mobitrace_collector::encode_batch;
    use mobitrace_model::{CellId, CounterSnapshot, Record, ScanSummary, SimTime, WifiState};

    fn record(device: u32, seq: u32) -> Record {
        Record {
            device: DeviceId(device),
            seq,
            time: SimTime::from_minutes(seq * 10),
            boot_epoch: 0,
            os: mobitrace_model::Os::Android,
            os_version: mobitrace_model::OsVersion::new(4, 4),
            counters: CounterSnapshot::default(),
            wifi: WifiState::Off,
            scan: ScanSummary::default(),
            apps: Vec::new(),
            geo: CellId::new(0, 0),
            battery_pct: 80,
            tethering: false,
        }
    }

    fn stream_of(records: &[Record]) -> Bytes {
        let mut buf = BytesMut::new();
        encode_batch(records.iter(), &mut buf);
        buf.freeze()
    }

    #[test]
    fn commits_across_cohorts_and_workers() {
        let fleet = FleetIngest::new(FleetConfig {
            cohorts: 4,
            workers: 3,
            pin_workers: false,
            ..FleetConfig::default()
        });
        let mut sent = 0u32;
        for d in 0..200u32 {
            let device = DeviceId(d);
            let recs: Vec<Record> = (0..5).map(|s| record(d, s)).collect();
            let (cohort, decision) = fleet.admit(device, 5, 0.0);
            assert_eq!(decision, Admission::Admit, "unloaded fleet admits");
            assert_eq!(cohort, fleet.router().cohort_of(device));
            fleet.submit(cohort, 5, stream_of(&recs));
            sent += 5;
        }
        let stats = fleet.finish();
        assert_eq!(stats.committed, u64::from(sent));
        assert_eq!(stats.duplicates, 0);
        assert_eq!(stats.lost_crash, 0);
        assert_eq!(stats.shed_records, 0);
        assert_eq!(stats.latencies_s.len(), 200);
        assert!(stats.latency_quantile(0.99) >= stats.latency_quantile(0.5));
        let records = stats.into_records();
        assert_eq!(records.len(), 1000);
        assert!(records.windows(2).all(|w| (w[0].device, w[0].seq) < (w[1].device, w[1].seq)));
    }

    #[test]
    fn duplicate_records_are_refused_and_counted() {
        let fleet =
            FleetIngest::new(FleetConfig { cohorts: 1, workers: 1, ..FleetConfig::default() });
        let recs: Vec<Record> = (0..10).map(|s| record(7, s)).collect();
        fleet.submit(0, 10, stream_of(&recs));
        fleet.submit(0, 10, stream_of(&recs));
        let stats = fleet.finish();
        assert_eq!(stats.committed, 10);
        assert_eq!(stats.duplicates, 10);
    }

    #[test]
    fn stalled_workers_advance_the_shed_frontier_newest_first() {
        let n_cohorts = 4usize;
        let fleet = FleetIngest::new(FleetConfig {
            cohorts: n_cohorts,
            workers: 1,
            queue_cap: 8,
            pin_workers: false,
            ..FleetConfig::default()
        });
        fleet.pause_workers();
        // Representative device per cohort (router is stable, so scan).
        let mut rep = vec![None; n_cohorts];
        for d in 0..10_000u32 {
            let c = fleet.router().cohort_of(DeviceId(d)) as usize;
            if rep[c].is_none() {
                rep[c] = Some(DeviceId(d));
            }
        }
        let rep: Vec<DeviceId> = rep.into_iter().map(Option::unwrap).collect();
        // Fill the single worker queue to just over half: the newest
        // cohort sheds, cohort 0 still admits.
        for i in 0..5u32 {
            let c = fleet.router().cohort_of(rep[(i as usize) % n_cohorts]);
            fleet.submit(c, 1, stream_of(&[record(1_000_000 + i, 0)]));
        }
        let (_, d_new) = fleet.admit(rep[n_cohorts - 1], 1, 0.0);
        assert_eq!(d_new, Admission::Shed, "newest cohort sheds first");
        let (_, d_old) = fleet.admit(rep[0], 1, 0.0);
        assert_eq!(d_old, Admission::Admit, "oldest cohort keeps flowing");
        fleet.account_shed(fleet.router().cohort_of(rep[n_cohorts - 1]), 1);
        // Saturate the queue: now even cohort 0 is refused (backpressure,
        // not shed — its data stays on the device).
        for i in 5..8u32 {
            fleet.submit(
                fleet.router().cohort_of(rep[0]),
                1,
                stream_of(&[record(2_000_000 + i, 0)]),
            );
        }
        let (_, d_full) = fleet.admit(rep[0], 1, 0.0);
        assert_ne!(d_full, Admission::Admit, "full queue admits nothing");
        fleet.resume_workers();
        let stats = fleet.finish();
        assert_eq!(stats.shed_records, 1);
        assert_eq!(*stats.shed_by_cohort.last().unwrap(), 1);
        assert_eq!(stats.shed_by_cohort[0], 0);
        assert_eq!(stats.committed, 8);
    }

    #[test]
    fn token_bucket_backpressure_is_per_cohort() {
        let fleet = FleetIngest::new(FleetConfig {
            cohorts: 2,
            workers: 1,
            rate_per_cohort: 100.0,
            burst: 10.0,
            pin_workers: false,
            ..FleetConfig::default()
        });
        let (mut dev_a, mut dev_b) = (None, None);
        for d in 0..1_000u32 {
            match fleet.router().cohort_of(DeviceId(d)) {
                0 if dev_a.is_none() => dev_a = Some(DeviceId(d)),
                1 if dev_b.is_none() => dev_b = Some(DeviceId(d)),
                _ => {}
            }
        }
        let (a, b) = (dev_a.unwrap(), dev_b.unwrap());
        assert_eq!(fleet.admit(a, 10, 0.0).1, Admission::Admit);
        assert_eq!(fleet.admit(a, 10, 0.0).1, Admission::Backpressure, "cohort 0 budget spent");
        fleet.note_backpressure();
        assert_eq!(fleet.admit(b, 10, 0.0).1, Admission::Admit, "cohort 1 has its own bucket");
        // Refill admits cohort 0 again.
        assert_eq!(fleet.admit(a, 10, 0.1).1, Admission::Admit);
        let stats = fleet.finish();
        assert_eq!(stats.backpressure_signals, 1);
    }

    #[test]
    fn crashed_cohort_backpressures_and_inflight_is_counted() {
        let fleet = FleetIngest::new(FleetConfig {
            cohorts: 1,
            workers: 1,
            journal: true,
            pin_workers: false,
            ..FleetConfig::default()
        });
        fleet.pause_workers();
        fleet.submit(0, 3, stream_of(&[record(1, 0), record(1, 1), record(1, 2)]));
        fleet.servers()[0].crash();
        // New admissions are refused at the door...
        assert_eq!(fleet.admit(DeviceId(2), 1, 0.0).1, Admission::Backpressure);
        // ...and the in-flight batch is lost per record, not per stream.
        fleet.resume_workers();
        let stats = fleet.finish();
        assert_eq!(stats.lost_crash, 3);
        assert_eq!(stats.committed, 0);
        assert_eq!(stats.crashes, 1);
    }
}
