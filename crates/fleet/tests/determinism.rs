//! Fleet-vs-batch determinism: a campaign pushed through the fleet
//! ingest frontend — any worker count, any cohort count — must clean to
//! a dataset **bit-identical** to the batch pipeline's. This is the
//! invariant that makes the frontend a pure scaling layer: cohort
//! routing, worker fan-out and stripe-run commit order may reorder work
//! arbitrarily, but never the data.

use bytes::BytesMut;
use mobitrace_collector::{clean, encode_batch, CleanOptions};
use mobitrace_fleet::{FleetConfig, FleetIngest};
use mobitrace_model::{Dataset, Record};
use mobitrace_sim::{run_campaign_raw, CampaignConfig, RawCampaign};

fn small_campaign() -> RawCampaign {
    let mut cfg = CampaignConfig::scaled(mobitrace_model::Year::Y2015, 40.0 / 1600.0);
    cfg.days = 2;
    cfg.seed = 1177;
    run_campaign_raw(&cfg, |_| {})
}

/// Push the campaign's records through a fleet pipeline as per-device
/// upload streams (chunked, so one device spans several batches) and
/// clean whatever the cohort servers retain.
fn clean_via_fleet(raw: &RawCampaign, workers: usize, cohorts: usize) -> Dataset {
    let fleet = FleetIngest::new(FleetConfig {
        cohorts,
        workers,
        queue_cap: 64,
        pin_workers: false,
        ..FleetConfig::default()
    });
    let mut i = 0;
    while i < raw.records.len() {
        let device = raw.records[i].device;
        let mut j = i;
        while j < raw.records.len() && raw.records[j].device == device {
            j += 1;
        }
        let cohort = fleet.router().cohort_of(device);
        // Chunk each device's trace into several upload rounds.
        for chunk in raw.records[i..j].chunks(16) {
            let mut buf = BytesMut::new();
            let n = encode_batch(chunk.iter(), &mut buf);
            fleet.submit(cohort, n as u32, buf.freeze());
        }
        i = j;
    }
    let stats = fleet.finish();
    assert_eq!(stats.committed, raw.records.len() as u64, "every record commits");
    assert_eq!(stats.duplicates + stats.lost_crash + stats.shed_records, 0);
    let records: Vec<Record> = stats.into_records();
    let (dataset, _) =
        clean(raw.meta.clone(), raw.devices.clone(), &records, CleanOptions::default());
    dataset
}

#[test]
fn fleet_ingest_is_bit_identical_to_batch_across_workers_and_cohorts() {
    let raw = small_campaign();
    let (reference, _) =
        clean(raw.meta.clone(), raw.devices.clone(), &raw.records, CleanOptions::default());
    assert!(!reference.bins.is_empty());
    for (workers, cohorts) in [(1, 1), (1, 4), (8, 1), (8, 4), (3, 5)] {
        let via_fleet = clean_via_fleet(&raw, workers, cohorts);
        assert_eq!(
            via_fleet, reference,
            "fleet({workers} workers, {cohorts} cohorts) diverged from batch"
        );
    }
}

#[test]
fn interleaved_and_duplicated_delivery_still_converges() {
    // Same campaign, but devices' chunks are submitted round-robin
    // (interleaved arrival) and every third chunk is sent twice — the
    // dedup path must erase the difference.
    let raw = small_campaign();
    let (reference, _) =
        clean(raw.meta.clone(), raw.devices.clone(), &raw.records, CleanOptions::default());
    let fleet = FleetIngest::new(FleetConfig {
        cohorts: 3,
        workers: 4,
        pin_workers: false,
        ..FleetConfig::default()
    });
    let mut chunks: Vec<(u32, &[Record])> = Vec::new();
    let mut i = 0;
    while i < raw.records.len() {
        let device = raw.records[i].device;
        let mut j = i;
        while j < raw.records.len() && raw.records[j].device == device {
            j += 1;
        }
        for chunk in raw.records[i..j].chunks(8) {
            chunks.push((fleet.router().cohort_of(device), chunk));
        }
        i = j;
    }
    // Round-robin by position: submit chunk k of every device, then k+1…
    chunks.sort_by_key(|(_, c)| c[0].seq);
    for (k, (cohort, chunk)) in chunks.iter().enumerate() {
        let mut buf = BytesMut::new();
        let n = encode_batch(chunk.iter(), &mut buf);
        let stream = buf.freeze();
        fleet.submit(*cohort, n as u32, stream.clone());
        if k % 3 == 0 {
            fleet.submit(*cohort, n as u32, stream);
        }
    }
    let stats = fleet.finish();
    assert_eq!(stats.committed, raw.records.len() as u64);
    assert!(stats.duplicates > 0, "the doubled chunks must be refused");
    let records: Vec<Record> = stats.into_records();
    let (dataset, _) =
        clean(raw.meta.clone(), raw.devices.clone(), &records, CleanOptions::default());
    assert_eq!(dataset, reference);
}
