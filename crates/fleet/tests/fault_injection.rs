//! Property: the extended reconciliation identity holds **exactly**
//! under randomized fault schedules. For any combination of worker
//! kills, server crashes and injected pool I/O failures,
//!
//! `made = committed + duplicates + shed + lost_crash + lost_worker`
//!
//! (driving `FleetIngest` directly there is no producer, so the
//! `pending`/`agent_dropped` terms of the full run identity are zero),
//! no genuine worker failure is reported, and every checkpoint file the
//! run left behind recovers to a subset of the records the final store
//! holds — a checkpoint may be stale, never wrong.

use bytes::{Bytes, BytesMut};
use mobitrace_collector::{encode_batch, CollectionServer};
use mobitrace_fleet::{
    CheckpointConfig, FaultInjector, FaultSpec, FleetConfig, FleetIngest, PoolFault, PoolFaultKind,
    RestartPolicy, ServerCrash, WorkerKill,
};
use mobitrace_model::{CellId, CounterSnapshot, DeviceId, Record, ScanSummary, SimTime, WifiState};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn record(device: u32, seq: u32) -> Record {
    Record {
        device: DeviceId(device),
        seq,
        time: SimTime::from_minutes(seq * 10),
        boot_epoch: 0,
        os: mobitrace_model::Os::Android,
        os_version: mobitrace_model::OsVersion::new(4, 4),
        counters: CounterSnapshot::default(),
        wifi: WifiState::Off,
        scan: ScanSummary::default(),
        apps: Vec::new(),
        geo: CellId::new(0, 0),
        battery_pct: 80,
        tethering: false,
    }
}

fn stream_of(records: &[Record]) -> Bytes {
    let mut buf = BytesMut::new();
    encode_batch(records.iter(), &mut buf);
    buf.freeze()
}

fn scratch(case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fleet-faultprop-{}-{:?}-{case}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Debug, Clone)]
struct Scenario {
    workers: usize,
    cohorts: usize,
    devices: u32,
    recs_per_device: u32,
    dup_every: u32,
    budget: u32,
    every_batches: u64,
    final_checkpoint: bool,
    kills: Vec<(usize, u64)>,
    crashes: Vec<(u32, u64, u64)>,
    pool_faults: Vec<(u64, u8)>,
    case_id: u64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (1usize..=3, 1usize..=3, 12u32..48, 1u32..=4, 0u32..4),
        (1u32..=3, 1u64..=6, any::<bool>()),
        prop::collection::vec((0usize..3, 1u64..24), 0..4),
        prop::collection::vec((0u32..3, 1u64..48, 1u64..32), 0..3),
        prop::collection::vec((1u64..12, 0u8..4), 0..3),
        any::<u64>(),
    )
        .prop_map(
            |(
                (workers, cohorts, devices, recs_per_device, dup_every),
                (budget, every_batches, final_checkpoint),
                kills,
                crashes,
                pool_faults,
                case_id,
            )| Scenario {
                workers,
                cohorts,
                devices,
                recs_per_device,
                dup_every,
                budget,
                every_batches,
                final_checkpoint,
                kills,
                crashes,
                pool_faults,
                case_id,
            },
        )
}

fn spec_of(s: &Scenario) -> FaultSpec {
    FaultSpec {
        worker_kills: s
            .kills
            .iter()
            .map(|&(w, at_batch)| WorkerKill { worker: w % s.workers, at_batch })
            .collect(),
        server_crashes: s
            .crashes
            .iter()
            .map(|&(c, at_batch, down_for)| ServerCrash {
                cohort: c % s.cohorts as u32,
                at_batch,
                down_for,
            })
            .collect(),
        pool_faults: s
            .pool_faults
            .iter()
            .map(|&(at_op, k)| PoolFault {
                at_op,
                kind: match k {
                    0 => PoolFaultKind::Enospc,
                    1 => PoolFaultKind::ShortWrite,
                    2 => PoolFaultKind::FsyncError,
                    _ => PoolFaultKind::Transient,
                },
            })
            .collect(),
    }
}

fn keys_of(records: &[Record]) -> BTreeSet<(u32, u32)> {
    records.iter().map(|r| (r.device.0, r.seq)).collect()
}

fn proptest_cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(16)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: proptest_cases(), ..ProptestConfig::default() })]

    #[test]
    fn identity_holds_exactly_under_randomized_faults(s in scenario()) {
        let dir = scratch(s.case_id);
        let spec = spec_of(&s);
        let injector = FaultInjector::new(spec);
        let cfg = FleetConfig {
            cohorts: s.cohorts,
            workers: s.workers,
            pin_workers: false,
            journal: true,
            restart: RestartPolicy { budget: s.budget, backoff_base_ms: 0 },
            checkpoint: Some(CheckpointConfig {
                dir: dir.clone(),
                every_batches: s.every_batches,
                final_checkpoint: s.final_checkpoint,
            }),
            ..FleetConfig::default()
        };
        let fleet = FleetIngest::with_faults(cfg, injector.clone());

        let mut made = 0u64;
        for d in 0..s.devices {
            let recs: Vec<Record> =
                (0..s.recs_per_device).map(|seq| record(d, seq)).collect();
            let cohort = fleet.router().cohort_of(DeviceId(d));
            let stream = stream_of(&recs);
            let n = recs.len() as u32;
            fleet.submit(cohort, n, stream.clone());
            made += u64::from(n);
            if s.dup_every > 0 && d % s.dup_every == 0 {
                fleet.submit(cohort, n, stream);
                made += u64::from(n);
            }
        }

        let stats = fleet.finish();
        prop_assert_eq!(stats.enqueued_records, made, "every submit is ledgered");
        let accounted = stats.committed
            + stats.duplicates
            + stats.lost_crash
            + stats.lost_worker
            + stats.shed_records;
        prop_assert_eq!(
            accounted, made,
            "identity violated: committed={} duplicates={} lost_crash={} \
             lost_worker={} shed={} (restarts={} degraded={} log={:?})",
            stats.committed, stats.duplicates, stats.lost_crash,
            stats.lost_worker, stats.shed_records, stats.restarts,
            stats.degraded_workers, stats.supervision_log
        );
        prop_assert!(
            stats.worker_failures.is_empty(),
            "injected faults must be handled, not failures: {:?}",
            stats.worker_failures
        );
        // Kills that fired must each be visible as a restart or a
        // degradation (never silently absorbed).
        let fired = injector.stats();
        prop_assert!(
            stats.restarts + stats.degraded_workers >= fired.kills_fired.min(1),
            "a fired kill left no supervision trace"
        );

        // Every surviving checkpoint file recovers to a subset of the
        // final store: stale is allowed, wrong is not.
        let cohorts = s.cohorts as u32;
        let final_keys = keys_of(&stats.into_records());
        for cohort in 0..cohorts {
            let path = dir.join(format!("cohort-{cohort}.mtpool"));
            if !path.exists() {
                continue;
            }
            let server = CollectionServer::recover_from_pool(&path)
                .map_err(|e| TestCaseError::fail(format!("unreadable checkpoint {path:?}: {e}")))?;
            let ckpt_keys = keys_of(&server.into_records());
            prop_assert!(
                ckpt_keys.is_subset(&final_keys),
                "checkpoint {cohort} holds records the final store never committed"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
