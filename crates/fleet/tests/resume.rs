//! Checkpoint-resume correctness: a fleet run interrupted kill-9 style
//! (periodic checkpoints only, no final flush) and resumed from its
//! checkpoint directory must clean to a dataset **byte-identical** to
//! the batch pipeline's, once the agents re-upload. This pins the resume
//! protocol end to end: atomic per-cohort `.mtpool` replace, recovery
//! through `recover_from_pool`, and dedup erasing the re-upload overlap.

use bytes::{Bytes, BytesMut};
use mobitrace_collector::{clean, encode_batch, CleanOptions};
use mobitrace_fleet::{CheckpointConfig, FleetConfig, FleetIngest};
use mobitrace_model::{Dataset, Record};
use mobitrace_sim::{run_campaign_raw, CampaignConfig, RawCampaign};
use std::path::PathBuf;

fn small_campaign() -> RawCampaign {
    let mut cfg = CampaignConfig::scaled(mobitrace_model::Year::Y2015, 40.0 / 1600.0);
    cfg.days = 2;
    cfg.seed = 1177;
    run_campaign_raw(&cfg, |_| {})
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The campaign as (cohort, n_records, encoded stream) upload chunks,
/// chunked per device exactly like the determinism tests.
fn upload_chunks(raw: &RawCampaign, fleet: &FleetIngest) -> Vec<(u32, u32, Bytes)> {
    let mut chunks = Vec::new();
    let mut i = 0;
    while i < raw.records.len() {
        let device = raw.records[i].device;
        let mut j = i;
        while j < raw.records.len() && raw.records[j].device == device {
            j += 1;
        }
        let cohort = fleet.router().cohort_of(device);
        for chunk in raw.records[i..j].chunks(16) {
            let mut buf = BytesMut::new();
            let n = encode_batch(chunk.iter(), &mut buf);
            chunks.push((cohort, n as u32, buf.freeze()));
        }
        i = j;
    }
    chunks
}

fn clean_of(raw: &RawCampaign, records: &[Record]) -> Dataset {
    let (dataset, _) =
        clean(raw.meta.clone(), raw.devices.clone(), records, CleanOptions::default());
    dataset
}

#[test]
fn interrupted_run_resumes_to_byte_identical_clean() {
    let raw = small_campaign();
    let reference = clean_of(&raw, &raw.records);
    assert!(!reference.bins.is_empty());

    let dir = scratch("kill9");
    let cfg = FleetConfig {
        cohorts: 3,
        workers: 2,
        pin_workers: false,
        checkpoint: Some(CheckpointConfig {
            dir: dir.clone(),
            every_batches: 4,
            // Kill-9 model: the process never reaches teardown, so only
            // the periodic checkpoints survive — everything committed
            // after a cohort's last checkpoint is lost.
            final_checkpoint: false,
        }),
        ..FleetConfig::default()
    };

    // Phase 1: the run gets ~60% of the uploads in, then "dies".
    let fleet = FleetIngest::new(cfg.clone());
    let chunks = upload_chunks(&raw, &fleet);
    let cut = chunks.len() * 3 / 5;
    for (cohort, n, stream) in &chunks[..cut] {
        fleet.submit(*cohort, *n, stream.clone());
    }
    let stats = fleet.finish();
    assert!(stats.checkpoints > 0, "periodic checkpoints fired before the kill");
    assert_eq!(stats.checkpoint_failures, 0);
    let committed_before_kill = stats.committed;
    drop(stats); // the in-memory stores die with the process

    // Phase 2: resume from the checkpoint directory. Some committed tail
    // is expected to be lost (that is what kill-9 means); the agents
    // re-upload everything and dedup erases the overlap.
    let fleet = FleetIngest::resume(cfg, &dir, None).expect("resume from checkpoints");
    let resumed = fleet.resumed_records();
    assert!(resumed > 0, "the checkpoints held real records");
    assert!(resumed <= committed_before_kill, "a checkpoint can only hold what was committed");
    for (cohort, n, stream) in &chunks {
        fleet.submit(*cohort, *n, stream.clone());
    }
    let stats = fleet.finish();
    assert_eq!(stats.resumed_records, resumed);
    assert!(stats.duplicates > 0, "re-uploads overlapping the checkpoints are refused");
    assert_eq!(
        stats.resumed_records + stats.committed,
        raw.records.len() as u64,
        "resume + re-upload covers the campaign exactly once"
    );

    let records: Vec<Record> = stats.into_records();
    assert_eq!(
        clean_of(&raw, &records),
        reference,
        "resumed fleet diverged from the batch pipeline"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_partial_directory_starts_missing_cohorts_fresh() {
    // Only some cohorts ever checkpointed (e.g. the process died before
    // the others' first interval). Resume must recover what exists and
    // start the rest empty — not fail, not invent records.
    let dir = scratch("partial");
    let cfg = FleetConfig {
        cohorts: 4,
        workers: 1,
        pin_workers: false,
        checkpoint: Some(CheckpointConfig {
            dir: dir.clone(),
            every_batches: 1,
            final_checkpoint: false,
        }),
        ..FleetConfig::default()
    };
    let raw = small_campaign();
    let fleet = FleetIngest::new(cfg.clone());
    let chunks = upload_chunks(&raw, &fleet);
    // Submit only chunks of one cohort, so the others never checkpoint.
    let lone = chunks[0].0;
    for (cohort, n, stream) in chunks.iter().filter(|(c, _, _)| *c == lone) {
        fleet.submit(*cohort, *n, stream.clone());
    }
    let stats = fleet.finish();
    assert!(stats.checkpoints > 0);
    drop(stats);

    // A stray temp file from an interrupted atomic replace must be
    // ignored, not recovered from.
    std::fs::write(dir.join("cohort-0.mtpool.tmp-dead"), b"half-written garbage").unwrap();

    let fleet = FleetIngest::resume(cfg, &dir, None).expect("partial resume");
    let stats = fleet.finish();
    assert!(stats.resumed_records > 0, "the lone cohort's checkpoint recovered");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_fails_loudly_not_silently() {
    let dir = scratch("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("cohort-0.mtpool"), b"not a pool file at all").unwrap();
    let cfg = FleetConfig { cohorts: 2, workers: 1, pin_workers: false, ..FleetConfig::default() };
    let err = FleetIngest::resume(cfg, &dir, None);
    assert!(err.is_err(), "a corrupt checkpoint must refuse to resume, not drop data");
    let _ = std::fs::remove_dir_all(&dir);
}
