//! Geographic points and distances.

use serde::{Deserialize, Serialize};

/// Kilometres per degree of latitude (WGS-84 mean).
pub const KM_PER_DEG_LAT: f64 = 110.95;

/// Kilometres per degree of longitude at the study area's mid-latitude
/// (~35.6°N): 111.32 · cos(35.6°).
pub const KM_PER_DEG_LON: f64 = 90.53;

/// A geographic point (WGS-84 degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees north.
    pub lat: f64,
    /// Longitude in degrees east.
    pub lon: f64,
}

impl GeoPoint {
    /// Construct a point. Panics outside plausible Honshu bounds to catch
    /// lat/lon swaps early.
    pub fn new(lat: f64, lon: f64) -> GeoPoint {
        assert!((20.0..50.0).contains(&lat), "latitude {lat} out of range");
        assert!((125.0..150.0).contains(&lon), "longitude {lon} out of range");
        GeoPoint { lat, lon }
    }

    /// Great-circle distance via the equirectangular approximation — exact
    /// enough (≪1% error) over the ~150 km study extent and monotonic,
    /// which is all the simulator needs.
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        let dy = (self.lat - other.lat) * KM_PER_DEG_LAT;
        let dx = (self.lon - other.lon) * KM_PER_DEG_LON;
        (dx * dx + dy * dy).sqrt()
    }

    /// Project onto the local equirectangular plane anchored at `origin`:
    /// `(east_m, north_m)`. One multiplication per axis, so hot paths
    /// (spatial hashing, scan-plan keys) can work in Euclidean metres
    /// without re-deriving the degree→metre factors.
    pub fn metres_from(self, origin: GeoPoint) -> (f64, f64) {
        (
            (self.lon - origin.lon) * KM_PER_DEG_LON * 1000.0,
            (self.lat - origin.lat) * KM_PER_DEG_LAT * 1000.0,
        )
    }

    /// The point offset by `(east_km, north_km)`.
    pub fn offset_km(self, east_km: f64, north_km: f64) -> GeoPoint {
        GeoPoint {
            lat: self.lat + north_km / KM_PER_DEG_LAT,
            lon: self.lon + east_km / KM_PER_DEG_LON,
        }
    }

    /// Linear interpolation between two points (`t` in [0, 1]).
    pub fn lerp(self, other: GeoPoint, t: f64) -> GeoPoint {
        let t = t.clamp(0.0, 1.0);
        GeoPoint {
            lat: self.lat + (other.lat - self.lat) * t,
            lon: self.lon + (other.lon - self.lon) * t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance() {
        let p = GeoPoint::new(35.69, 139.70);
        assert_eq!(p.distance_km(p), 0.0);
    }

    #[test]
    fn tokyo_yokohama_distance_plausible() {
        // Tokyo (Shinjuku) to Yokohama is ~28 km.
        let tokyo = GeoPoint::new(35.690, 139.700);
        let yokohama = GeoPoint::new(35.444, 139.638);
        let d = tokyo.distance_km(yokohama);
        assert!((25.0..32.0).contains(&d), "got {d} km");
    }

    #[test]
    fn offset_roundtrip() {
        let p = GeoPoint::new(35.6, 139.7);
        let q = p.offset_km(10.0, -5.0);
        assert!((p.distance_km(q) - (125.0f64).sqrt()).abs() < 0.01);
        let back = q.offset_km(-10.0, 5.0);
        assert!(p.distance_km(back) < 1e-9);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = GeoPoint::new(35.0, 139.0);
        let b = GeoPoint::new(36.0, 140.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let m = a.lerp(b, 0.5);
        assert!((m.lat - 35.5).abs() < 1e-12 && (m.lon - 139.5).abs() < 1e-12);
        // Clamping.
        assert_eq!(a.lerp(b, 2.0), b);
    }

    #[test]
    #[should_panic]
    fn swapped_lat_lon_panics() {
        let _ = GeoPoint::new(139.7, 35.69);
    }

    #[test]
    fn metres_from_agrees_with_distance() {
        let origin = GeoPoint::new(35.10, 138.90);
        let p = origin.offset_km(12.5, -3.75);
        let (e, n) = p.metres_from(origin);
        assert!((e - 12_500.0).abs() < 1e-6, "east {e}");
        assert!((n + 3_750.0).abs() < 1e-6, "north {n}");
        let d = (e * e + n * n).sqrt() / 1000.0;
        assert!((d - origin.distance_km(p)).abs() < 1e-9);
    }
}
