//! Commute paths.
//!
//! Most commuters in the Greater Tokyo area travel by rail. We model a
//! commute as the straight-line sequence of 5 km cells between home and
//! workplace, traversed at rail-like speed. The supercover line
//! rasterisation guarantees consecutive path cells are edge- or
//! corner-adjacent, so a device's reported location never jumps.

use crate::grid::Grid;
use crate::point::GeoPoint;
use mobitrace_model::CellId;
use serde::{Deserialize, Serialize};

/// Average door-to-door commute speed including transfers and walks, used
/// to convert path length to travel time.
pub const COMMUTE_SPEED_KMH: f64 = 30.0;

/// A precomputed home↔office commute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommutePath {
    /// Cells from home (first) to office (last); length ≥ 1.
    pub cells: Vec<CellId>,
    /// One-way travel time in minutes.
    pub minutes: u32,
}

impl CommutePath {
    /// Build the path between two points on a grid.
    pub fn between(grid: &Grid, home: GeoPoint, office: GeoPoint) -> CommutePath {
        let cells = line_cells(grid.cell_of(home), grid.cell_of(office));
        let km = home.distance_km(office);
        let minutes = ((km / COMMUTE_SPEED_KMH) * 60.0).ceil().max(5.0) as u32;
        CommutePath { cells, minutes }
    }

    /// Home cell.
    pub fn home(&self) -> CellId {
        self.cells[0]
    }

    /// Office cell.
    pub fn office(&self) -> CellId {
        *self.cells.last().expect("path is never empty")
    }

    /// Location along the commute at `progress` ∈ [0, 1]
    /// (0 = home, 1 = office).
    pub fn at_progress(&self, progress: f64) -> CellId {
        let p = progress.clamp(0.0, 1.0);
        let idx = (p * (self.cells.len() - 1) as f64).round() as usize;
        self.cells[idx]
    }

    /// The reverse (office → home) path.
    pub fn reversed(&self) -> CommutePath {
        let mut cells = self.cells.clone();
        cells.reverse();
        CommutePath { cells, minutes: self.minutes }
    }
}

/// All cells on the line segment from `a` to `b` (inclusive), using an
/// integer DDA that steps one axis at a time, so consecutive cells are
/// always 8-adjacent.
fn line_cells(a: CellId, b: CellId) -> Vec<CellId> {
    let (mut x, mut y) = (i32::from(a.x), i32::from(a.y));
    let (x1, y1) = (i32::from(b.x), i32::from(b.y));
    let dx = (x1 - x).abs();
    let dy = (y1 - y).abs();
    let sx = (x1 - x).signum();
    let sy = (y1 - y).signum();
    let mut err = dx - dy;
    let mut out = Vec::with_capacity((dx.max(dy) + 1) as usize);
    loop {
        out.push(CellId::new(x as i16, y as i16));
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 > -dy {
            err -= dy;
            x += sx;
        }
        if e2 < dx {
            err += dx;
            y += sy;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::places::City;
    use proptest::prelude::*;

    #[test]
    fn path_endpoints_match() {
        let g = Grid::greater_tokyo();
        let home = City::Saitama.location();
        let office = City::Tokyo.location();
        let p = CommutePath::between(&g, home, office);
        assert_eq!(p.home(), g.cell_of(home));
        assert_eq!(p.office(), g.cell_of(office));
        assert_eq!(p.at_progress(0.0), p.home());
        assert_eq!(p.at_progress(1.0), p.office());
    }

    #[test]
    fn travel_time_plausible() {
        let g = Grid::greater_tokyo();
        // Saitama → central Tokyo is ~22 km; expect ~45 min at 30 km/h.
        let p = CommutePath::between(&g, City::Saitama.location(), City::Tokyo.location());
        assert!((30..=70).contains(&p.minutes), "{} min", p.minutes);
        // Zero-length commute still takes the 5-minute floor.
        let q = CommutePath::between(&g, City::Tokyo.location(), City::Tokyo.location());
        assert_eq!(q.minutes, 5);
        assert_eq!(q.cells.len(), 1);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let g = Grid::greater_tokyo();
        let p = CommutePath::between(&g, City::Chiba.location(), City::Shinjuku.location());
        let r = p.reversed();
        assert_eq!(r.home(), p.office());
        assert_eq!(r.office(), p.home());
        assert_eq!(r.minutes, p.minutes);
    }

    proptest! {
        #[test]
        fn line_cells_adjacent_and_terminated(
            ax in 0i16..31, ay in 0i16..23, bx in 0i16..31, by in 0i16..23
        ) {
            let cells = line_cells(CellId::new(ax, ay), CellId::new(bx, by));
            prop_assert_eq!(cells[0], CellId::new(ax, ay));
            prop_assert_eq!(*cells.last().unwrap(), CellId::new(bx, by));
            for w in cells.windows(2) {
                prop_assert_eq!(w[0].chebyshev(w[1]), 1, "non-adjacent step");
            }
            // Path length is exactly the Chebyshev distance + 1.
            let d = CellId::new(ax, ay).chebyshev(CellId::new(bx, by)) as usize;
            prop_assert_eq!(cells.len(), d + 1);
        }
    }
}
