//! # mobitrace-geo
//!
//! Geography substrate for the Greater Tokyo measurement area: geographic
//! points, the 5 km × 5 km reporting grid used by the agent's coarse
//! geolocation, the city anchors that appear in the paper's AP-density maps
//! (Fig. 10), population-density surfaces for placing homes, offices and
//! public APs, and rail-like commute paths between home and workplace.
//!
//! Everything is deterministic given an RNG; distances use an
//! equirectangular approximation, which is accurate to well under 1% over
//! the ~150 km extent of the study area.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commute;
pub mod density;
pub mod grid;
pub mod places;
pub mod point;
pub mod pois;

pub use commute::CommutePath;
pub use density::DensitySurface;
pub use grid::Grid;
pub use places::City;
pub use point::GeoPoint;
pub use pois::PoiSet;
