//! Density surfaces: where people live, work and roam.
//!
//! A [`DensitySurface`] is a mixture of isotropic Gaussian kernels centred
//! on the city anchors. It supports point sampling (for placing homes,
//! offices and APs) and per-cell weights (for distributing public AP
//! deployments like the paper's Fig. 10 maps).

use crate::grid::Grid;
use crate::places::City;
use crate::point::GeoPoint;
use mobitrace_model::CellId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One Gaussian kernel of the mixture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel centre.
    pub centre: GeoPoint,
    /// Mixture weight (relative).
    pub weight: f64,
    /// Standard deviation in km.
    pub sigma_km: f64,
}

/// A mixture-of-Gaussians density over the study area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensitySurface {
    kernels: Vec<Kernel>,
    total_weight: f64,
}

impl DensitySurface {
    /// Build from explicit kernels. Panics if empty or non-positive weights.
    pub fn new(kernels: Vec<Kernel>) -> DensitySurface {
        assert!(!kernels.is_empty(), "density surface needs kernels");
        let total_weight = kernels.iter().map(|k| k.weight).sum();
        for k in &kernels {
            assert!(k.weight > 0.0 && k.sigma_km > 0.0, "bad kernel {k:?}");
        }
        DensitySurface { kernels, total_weight }
    }

    /// Residential density: where the recruited users' homes are.
    pub fn residential() -> DensitySurface {
        DensitySurface::from_city_weights(|c| c.residential_weight(), 1.6)
    }

    /// Office density: where commuters work. Tighter kernels — employment
    /// clusters around stations and business districts.
    pub fn office() -> DensitySurface {
        DensitySurface::from_city_weights(|c| c.office_weight(), 0.8)
    }

    /// Public-footfall density: where public WiFi APs are deployed and
    /// where daytime roaming happens.
    pub fn public() -> DensitySurface {
        DensitySurface::from_city_weights(|c| c.public_weight(), 1.0)
    }

    fn from_city_weights(weight: impl Fn(City) -> f64, sigma_scale: f64) -> DensitySurface {
        DensitySurface::new(
            City::ALL
                .iter()
                .map(|&c| Kernel {
                    centre: c.location(),
                    weight: weight(c),
                    sigma_km: c.spread_km() * sigma_scale,
                })
                .collect(),
        )
    }

    /// Unnormalised density at a point.
    pub fn density_at(&self, p: GeoPoint) -> f64 {
        self.kernels
            .iter()
            .map(|k| {
                let d = p.distance_km(k.centre);
                k.weight * (-0.5 * (d / k.sigma_km).powi(2)).exp() / (k.sigma_km * k.sigma_km)
            })
            .sum()
    }

    /// Sample a point from the mixture.
    pub fn sample_point<R: Rng + ?Sized>(&self, rng: &mut R) -> GeoPoint {
        // Pick a kernel by weight, then a 2-D Gaussian offset via Box-Muller.
        let mut pick = rng.gen_range(0.0..self.total_weight);
        let mut chosen = &self.kernels[self.kernels.len() - 1];
        for k in &self.kernels {
            if pick < k.weight {
                chosen = k;
                break;
            }
            pick -= k.weight;
        }
        let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen_range(0.0..1.0));
        let r = (-2.0 * u1.ln()).sqrt() * chosen.sigma_km;
        let theta = 2.0 * std::f64::consts::PI * u2;
        chosen.centre.offset_km(r * theta.cos(), r * theta.sin())
    }

    /// Sample a point and report its grid cell (clamped into the grid).
    pub fn sample_cell<R: Rng + ?Sized>(&self, rng: &mut R, grid: &Grid) -> (GeoPoint, CellId) {
        let p = self.sample_point(rng);
        (p, grid.cell_of(p))
    }

    /// Per-cell weights over a grid, normalised to sum to 1. Used to
    /// apportion a fixed AP budget across cells.
    pub fn cell_weights(&self, grid: &Grid) -> Vec<f64> {
        let mut w: Vec<f64> = grid.cells().map(|c| self.density_at(grid.centre_of(c))).collect();
        let total: f64 = w.iter().sum();
        assert!(total > 0.0);
        for v in &mut w {
            *v /= total;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn density_peaks_at_heavy_kernel() {
        let s = DensitySurface::public();
        let shinjuku = City::Shinjuku.location();
        let odawara = City::Odawara.location();
        assert!(s.density_at(shinjuku) > s.density_at(odawara) * 3.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = DensitySurface::residential();
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..50 {
            let pa = s.sample_point(&mut a);
            let pb = s.sample_point(&mut b);
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn samples_cluster_near_anchors() {
        let s = DensitySurface::office();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let grid = Grid::greater_tokyo();
        let mut near = 0;
        let n = 500;
        for _ in 0..n {
            let p = s.sample_point(&mut rng);
            let min_d =
                City::ALL.iter().map(|c| p.distance_km(c.location())).fold(f64::INFINITY, f64::min);
            if min_d < 15.0 {
                near += 1;
            }
            // All samples map to a valid (possibly clamped) cell.
            assert!(grid.contains(grid.cell_of(p)));
        }
        assert!(near > n * 9 / 10, "only {near}/{n} samples near anchors");
    }

    #[test]
    fn cell_weights_normalised_and_downtown_heavy() {
        let grid = Grid::greater_tokyo();
        let s = DensitySurface::public();
        let w = s.cell_weights(&grid);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let shinjuku_cell = grid.cell_of(City::Shinjuku.location());
        let odawara_cell = grid.cell_of(City::Odawara.location());
        assert!(w[grid.dense_index(shinjuku_cell)] > w[grid.dense_index(odawara_cell)]);
    }

    #[test]
    #[should_panic]
    fn empty_surface_panics() {
        let _ = DensitySurface::new(vec![]);
    }
}
