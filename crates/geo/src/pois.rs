//! Points of interest: stations, shopping streets, café clusters.
//!
//! Public WiFi APs are deployed *where people go* — metro stations, malls,
//! downtown crossings — and people go where the APs are. A shared
//! [`PoiSet`] ties the two sides together: the deployment model scatters
//! public APs around POIs, commuters pass through their home/office
//! stations, and leisure outings target POIs, which is what produces
//! realistic public-WiFi encounter rates (Fig. 12/17 of the paper).

use crate::density::DensitySurface;
use crate::point::GeoPoint;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A set of POIs with footfall weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoiSet {
    /// POI locations.
    pub points: Vec<GeoPoint>,
    /// Relative footfall weight per POI (higher = busier).
    pub weights: Vec<f64>,
    total_weight: f64,
}

impl PoiSet {
    /// Generate `n` POIs from the public-footfall surface. Busier POIs
    /// (downtown) get higher weights.
    pub fn generate<R: Rng + ?Sized>(n: usize, rng: &mut R) -> PoiSet {
        assert!(n > 0, "need at least one POI");
        let surface = DensitySurface::public();
        let points: Vec<GeoPoint> = (0..n).map(|_| surface.sample_point(rng)).collect();
        let weights: Vec<f64> = points.iter().map(|p| surface.density_at(*p).max(1e-9)).collect();
        let total_weight = weights.iter().sum();
        PoiSet { points, weights, total_weight }
    }

    /// Number of POIs.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if empty (never true for generated sets).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sample a POI index weighted by footfall.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut x = rng.gen_range(0.0..self.total_weight);
        for (i, &w) in self.weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        self.points.len() - 1
    }

    /// Sample a POI location weighted by footfall.
    pub fn sample_point<R: Rng + ?Sized>(&self, rng: &mut R) -> GeoPoint {
        self.points[self.sample_index(rng)]
    }

    /// The POI nearest to a point (a commuter's "station").
    pub fn nearest(&self, p: GeoPoint) -> GeoPoint {
        *self
            .points
            .iter()
            .min_by(|a, b| {
                a.distance_km(p).partial_cmp(&b.distance_km(p)).expect("distances are finite")
            })
            .expect("POI set is never empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::places::City;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generation_deterministic() {
        let a = PoiSet::generate(50, &mut ChaCha8Rng::seed_from_u64(1));
        let b = PoiSet::generate(50, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn nearest_returns_closest() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let set = PoiSet::generate(100, &mut rng);
        let probe = City::Shinjuku.location();
        let nearest = set.nearest(probe);
        for p in &set.points {
            assert!(nearest.distance_km(probe) <= p.distance_km(probe) + 1e-12);
        }
    }

    #[test]
    fn weighted_sampling_prefers_downtown() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let set = PoiSet::generate(200, &mut rng);
        let shinjuku = City::Shinjuku.location();
        let odawara = City::Odawara.location();
        let (mut near_dt, mut near_od) = (0, 0);
        for _ in 0..2000 {
            let p = set.sample_point(&mut rng);
            if p.distance_km(shinjuku) < 10.0 {
                near_dt += 1;
            }
            if p.distance_km(odawara) < 10.0 {
                near_od += 1;
            }
        }
        assert!(near_dt > near_od, "downtown {near_dt} vs odawara {near_od}");
    }

    #[test]
    #[should_panic]
    fn zero_pois_panics() {
        let _ = PoiSet::generate(0, &mut ChaCha8Rng::seed_from_u64(4));
    }
}
