//! The 5 km reporting grid.
//!
//! The measurement agent reports geolocation at 5 km precision; the paper's
//! Fig. 10 and the availability analysis (§3.5) work on 5 km cells. [`Grid`]
//! maps between [`GeoPoint`]s and [`CellId`]s and enumerates the cells of
//! the study area.

use crate::point::{GeoPoint, KM_PER_DEG_LAT, KM_PER_DEG_LON};
use mobitrace_model::CellId;
use serde::{Deserialize, Serialize};

/// A square grid over the study area.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    /// South-west corner of cell (0, 0).
    pub origin: GeoPoint,
    /// Cell edge length in km.
    pub cell_km: f64,
    /// Number of cells east-west.
    pub width: i16,
    /// Number of cells north-south.
    pub height: i16,
}

impl Grid {
    /// The Greater-Tokyo study grid: 5 km cells covering roughly
    /// 138.9–140.6°E, 35.1–36.1°N — the extent of the paper's Fig. 10 maps
    /// (Odawara in the south-west to Narita in the north-east).
    pub fn greater_tokyo() -> Grid {
        Grid { origin: GeoPoint::new(35.10, 138.90), cell_km: 5.0, width: 31, height: 23 }
    }

    /// Cell containing a point (points outside the grid clamp to the edge,
    /// mirroring how the real agent reports the nearest cell).
    pub fn cell_of(&self, p: GeoPoint) -> CellId {
        let east_km = (p.lon - self.origin.lon) * KM_PER_DEG_LON;
        let north_km = (p.lat - self.origin.lat) * KM_PER_DEG_LAT;
        let x = (east_km / self.cell_km).floor() as i32;
        let y = (north_km / self.cell_km).floor() as i32;
        CellId::new(
            x.clamp(0, i32::from(self.width) - 1) as i16,
            y.clamp(0, i32::from(self.height) - 1) as i16,
        )
    }

    /// Centre point of a cell.
    pub fn centre_of(&self, c: CellId) -> GeoPoint {
        let east_km = (f64::from(c.x) + 0.5) * self.cell_km;
        let north_km = (f64::from(c.y) + 0.5) * self.cell_km;
        self.origin.offset_km(east_km, north_km)
    }

    /// Is the cell within the grid bounds?
    pub fn contains(&self, c: CellId) -> bool {
        (0..self.width).contains(&c.x) && (0..self.height).contains(&c.y)
    }

    /// Iterate all cells row-major (south to north, west to east).
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        let (w, h) = (self.width, self.height);
        (0..h).flat_map(move |y| (0..w).map(move |x| CellId::new(x, y)))
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        usize::from(self.width as u16) * usize::from(self.height as u16)
    }

    /// Dense row-major index of a cell for array-backed per-cell tallies.
    pub fn dense_index(&self, c: CellId) -> usize {
        debug_assert!(self.contains(c));
        usize::from(c.y as u16) * usize::from(self.width as u16) + usize::from(c.x as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_cell_roundtrip() {
        let g = Grid::greater_tokyo();
        for c in g.cells() {
            assert_eq!(g.cell_of(g.centre_of(c)), c);
        }
    }

    #[test]
    fn tokyo_grid_covers_anchor_cities() {
        let g = Grid::greater_tokyo();
        for (lat, lon) in [
            (35.690, 139.700), // Tokyo/Shinjuku
            (35.444, 139.638), // Yokohama
            (35.607, 140.106), // Chiba
            (35.776, 140.318), // Narita
            (35.256, 139.155), // Odawara
        ] {
            let c = g.cell_of(GeoPoint::new(lat, lon));
            assert!(g.contains(c));
            // Clamping never triggered for in-area cities: centre is near point.
            assert!(g.centre_of(c).distance_km(GeoPoint::new(lat, lon)) < 4.0);
        }
    }

    #[test]
    fn out_of_area_points_clamp() {
        let g = Grid::greater_tokyo();
        let far_north = GeoPoint::new(38.0, 139.7);
        let c = g.cell_of(far_north);
        assert!(g.contains(c));
        assert_eq!(c.y, g.height - 1);
    }

    #[test]
    fn dense_index_bijective() {
        let g = Grid::greater_tokyo();
        let mut seen = vec![false; g.cell_count()];
        for c in g.cells() {
            let i = g.dense_index(c);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cell_edge_membership() {
        let g = Grid::greater_tokyo();
        // A point exactly on the origin belongs to cell (0,0).
        assert_eq!(g.cell_of(g.origin), CellId::new(0, 0));
    }
}
