//! City anchors of the Greater Tokyo area.
//!
//! The ten labelled cities of the paper's Fig. 10 maps plus the two downtown
//! wards (Shinjuku, Shibuya) the paper calls out as the highest-density
//! public-WiFi areas. Each anchor carries weights used by the density
//! surfaces: how much residential population, how much office employment and
//! how much public/commercial footfall concentrates there.

use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};

/// A named anchor of the study area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum City {
    /// Central Tokyo (around Tokyo station / Marunouchi).
    Tokyo,
    /// Shinjuku ward — densest public-WiFi area in the dataset.
    Shinjuku,
    /// Shibuya ward — second densest public-WiFi area.
    Shibuya,
    /// Yokohama.
    Yokohama,
    /// Kawasaki.
    Kawasaki,
    /// Saitama.
    Saitama,
    /// Chiba.
    Chiba,
    /// Funabashi.
    Funabashi,
    /// Hachioji.
    Hachioji,
    /// Narita (airport town, far east).
    Narita,
    /// Odawara (far south-west).
    Odawara,
    /// Yokosuka (south).
    Yokosuka,
}

impl City {
    /// All anchors.
    pub const ALL: [City; 12] = [
        City::Tokyo,
        City::Shinjuku,
        City::Shibuya,
        City::Yokohama,
        City::Kawasaki,
        City::Saitama,
        City::Chiba,
        City::Funabashi,
        City::Hachioji,
        City::Narita,
        City::Odawara,
        City::Yokosuka,
    ];

    /// Anchor coordinates (city centre / main station).
    pub fn location(self) -> GeoPoint {
        let (lat, lon) = match self {
            City::Tokyo => (35.681, 139.767),
            City::Shinjuku => (35.690, 139.700),
            City::Shibuya => (35.658, 139.702),
            City::Yokohama => (35.444, 139.638),
            City::Kawasaki => (35.531, 139.697),
            City::Saitama => (35.861, 139.645),
            City::Chiba => (35.607, 140.106),
            City::Funabashi => (35.695, 139.985),
            City::Hachioji => (35.656, 139.339),
            City::Narita => (35.776, 140.318),
            City::Odawara => (35.256, 139.155),
            City::Yokosuka => (35.281, 139.672),
        };
        GeoPoint::new(lat, lon)
    }

    /// Relative residential population weight (where recruited users live).
    pub fn residential_weight(self) -> f64 {
        match self {
            City::Tokyo => 6.0,
            City::Shinjuku => 4.0,
            City::Shibuya => 3.0,
            City::Yokohama => 8.0,
            City::Kawasaki => 5.0,
            City::Saitama => 5.0,
            City::Chiba => 4.0,
            City::Funabashi => 3.0,
            City::Hachioji => 3.0,
            City::Narita => 1.0,
            City::Odawara => 1.0,
            City::Yokosuka => 2.0,
        }
    }

    /// Relative office-employment weight (where commuters work). Central
    /// Tokyo dominates, matching the paper's observation that commute peaks
    /// flow towards downtown on public transport.
    pub fn office_weight(self) -> f64 {
        match self {
            City::Tokyo => 12.0,
            City::Shinjuku => 8.0,
            City::Shibuya => 6.0,
            City::Yokohama => 4.0,
            City::Kawasaki => 2.5,
            City::Saitama => 2.0,
            City::Chiba => 1.5,
            City::Funabashi => 1.0,
            City::Hachioji => 1.0,
            City::Narita => 0.6,
            City::Odawara => 0.3,
            City::Yokosuka => 0.6,
        }
    }

    /// Relative public/commercial footfall weight (where public WiFi APs
    /// and daytime visitors concentrate). Shinjuku/Shibuya lead, as in the
    /// paper's Fig. 10 where their cells exceed 300 associated public APs.
    pub fn public_weight(self) -> f64 {
        match self {
            City::Tokyo => 9.0,
            City::Shinjuku => 12.0,
            City::Shibuya => 10.0,
            City::Yokohama => 5.0,
            City::Kawasaki => 2.5,
            City::Saitama => 2.0,
            City::Chiba => 2.0,
            City::Funabashi => 1.5,
            City::Hachioji => 1.5,
            City::Narita => 1.2,
            City::Odawara => 0.5,
            City::Yokosuka => 0.8,
        }
    }

    /// Spatial spread (km) of the anchor's influence. Residential sprawl is
    /// wide; downtown cores are tight.
    pub fn spread_km(self) -> f64 {
        match self {
            City::Tokyo | City::Shinjuku | City::Shibuya => 4.0,
            City::Yokohama | City::Kawasaki => 7.0,
            City::Saitama | City::Chiba | City::Funabashi | City::Hachioji => 8.0,
            City::Narita | City::Odawara | City::Yokosuka => 6.0,
        }
    }

    /// Label used on the Fig. 10 style maps.
    pub fn label(self) -> &'static str {
        match self {
            City::Tokyo => "Tokyo",
            City::Shinjuku => "Shinjuku",
            City::Shibuya => "Shibuya",
            City::Yokohama => "Yokohama",
            City::Kawasaki => "Kawasaki",
            City::Saitama => "Saitama",
            City::Chiba => "Chiba",
            City::Funabashi => "Funabashi",
            City::Hachioji => "Hachioji",
            City::Narita => "Narita",
            City::Odawara => "Odawara",
            City::Yokosuka => "Yokosuka",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    #[test]
    fn all_anchors_inside_grid() {
        let g = Grid::greater_tokyo();
        for c in City::ALL {
            let cell = g.cell_of(c.location());
            assert!(g.contains(cell), "{:?}", c);
            // Not clamped to an edge for any anchor.
            assert!(g.centre_of(cell).distance_km(c.location()) < 4.0, "{:?}", c);
        }
    }

    #[test]
    fn downtown_leads_public_weight() {
        assert!(City::Shinjuku.public_weight() > City::Yokohama.public_weight());
        assert!(City::Shibuya.public_weight() > City::Odawara.public_weight());
    }

    #[test]
    fn office_concentrates_downtown() {
        let downtown: f64 =
            [City::Tokyo, City::Shinjuku, City::Shibuya].iter().map(|c| c.office_weight()).sum();
        let total: f64 = City::ALL.iter().map(|c| c.office_weight()).sum();
        assert!(downtown / total > 0.5, "downtown share {}", downtown / total);
    }

    #[test]
    fn weights_positive() {
        for c in City::ALL {
            assert!(c.residential_weight() > 0.0);
            assert!(c.office_weight() > 0.0);
            assert!(c.public_weight() > 0.0);
            assert!(c.spread_km() > 0.0);
        }
    }
}
