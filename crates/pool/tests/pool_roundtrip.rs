//! Pool round-trip property tests: arbitrary datasets → write → mmap →
//! decode → `AnalysisContext::from_parts` → every columnar pass must be
//! bit-equal (including f64 aggregates) to the same pass over the
//! in-memory dataset. This is the pool's contract: persistence is
//! invisible to analysis.

use mobitrace_core::daily::TrafficClass;
use mobitrace_core::ratios::ClassFilter;
use mobitrace_core::{
    apclass, apps, availability, daily, overview, quality, ratios, timeseries, AnalysisContext,
};
use mobitrace_model::{
    ApEntry, ApRef, AppBin, AppCategory, Band, BinRecord, Bssid, CampaignMeta, Carrier, CellId,
    Channel, Dataset, DatasetColumns, DatasetIndex, Dbm, DeviceId, DeviceInfo, Essid, Os,
    OsVersion, ScanSummary, SimTime, WifiAssoc, WifiBinState, Year,
};
use mobitrace_pool::{PoolReader, PoolWriter};
use proptest::prelude::*;
use std::path::PathBuf;

const N_DEV: u32 = 4;
const N_APS: u32 = 3;

fn wifi_strategy() -> impl Strategy<Value = WifiBinState> {
    prop_oneof![
        Just(WifiBinState::Off),
        Just(WifiBinState::OnUnassociated),
        (0..N_APS, any::<bool>(), 1u8..=13, -90i16..=-30).prop_map(|(ap, five, ch, rssi)| {
            WifiBinState::Associated(WifiAssoc {
                ap: ApRef(ap),
                band: if five { Band::Ghz5 } else { Band::Ghz24 },
                channel: Channel(ch),
                rssi: Dbm::new(rssi),
            })
        }),
    ]
}

fn apps_strategy() -> impl Strategy<Value = Vec<AppBin>> {
    proptest::collection::vec(
        (0usize..AppCategory::ALL.len(), 0u64..2_000_000, 0u64..200_000).prop_map(
            |(cat, rx, tx)| AppBin { category: AppCategory::ALL[cat], rx_bytes: rx, tx_bytes: tx },
        ),
        0..3,
    )
}

fn bin_strategy() -> impl Strategy<Value = BinRecord> {
    (
        (0..N_DEV, 0u32..7, 0u32..1440, wifi_strategy()),
        proptest::array::uniform6(0u64..5_000_000),
        proptest::array::uniform8(0u16..20),
        apps_strategy(),
        (-4i16..4, -4i16..4),
    )
        .prop_map(|((dev, day, minute, wifi), vol, scan, apps, (gx, gy))| BinRecord {
            device: DeviceId(dev),
            time: SimTime::from_day_minute(day, minute),
            rx_3g: vol[0],
            tx_3g: vol[1],
            rx_lte: vol[2],
            tx_lte: vol[3],
            rx_wifi: vol[4],
            tx_wifi: vol[5],
            wifi,
            scan: ScanSummary {
                n24_all: scan[0],
                n24_strong: scan[1],
                n5_all: scan[2],
                n5_strong: scan[3],
                n24_public_all: scan[4],
                n24_public_strong: scan[5],
                n5_public_all: scan[6],
                n5_public_strong: scan[7],
            },
            apps,
            geo: CellId::new(gx, gy),
            os_version: OsVersion::new(4, 4),
        })
}

fn dataset(mut bins: Vec<BinRecord>) -> Dataset {
    bins.sort_by_key(|b| (b.device, b.time));
    bins.dedup_by_key(|b| (b.device, b.time));
    Dataset {
        meta: CampaignMeta {
            year: Year::Y2013,
            start: Year::Y2013.campaign_start(),
            days: 7,
            seed: 0,
        },
        devices: (0..N_DEV)
            .map(|i| DeviceInfo {
                device: DeviceId(i),
                os: if i % 3 == 2 { Os::Ios } else { Os::Android },
                carrier: Carrier::ALL[(i % 3) as usize],
                recruited: true,
                survey: None,
                truth: None,
            })
            .collect(),
        aps: (0..N_APS)
            .map(|i| ApEntry {
                bssid: Bssid::from_u64(u64::from(i) + 1),
                // Repeat one name so the dictionary dedup path is hit.
                essid: Essid::new(if i == 2 { "ap-0".to_string() } else { format!("ap-{i}") }),
            })
            .collect(),
        bins,
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mtpool-roundtrip-{}-{:?}-{tag}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Write `ds` to a fresh pool, mmap it back, and return the decoded
/// parts. Asserts the raw parts are bit-equal to their in-memory twins.
fn roundtrip(ds: &Dataset, tag: &str) -> (Dataset, DatasetIndex, DatasetColumns) {
    let dir = scratch(tag);
    let path = dir.join("rt.mtpool");
    let index = DatasetIndex::build(ds);
    let cols = DatasetColumns::build(ds);
    {
        let mut w = PoolWriter::create(&path).expect("create pool");
        w.append_dataset(0, ds, &index, &cols).expect("append");
        w.commit().expect("commit");
    }
    let r = PoolReader::open(&path).expect("open pool");
    let pd = r.decode_dataset(0).expect("decode");
    assert_eq!(&pd.ds, ds, "materialized rows differ");
    assert_eq!(pd.index, index, "persisted index differs");
    assert_eq!(pd.cols, cols, "decoded columns differ");
    drop(r);
    let _ = std::fs::remove_dir_all(&dir);
    (pd.ds, pd.index, pd.cols)
}

/// All twelve columnar passes, pool context vs in-memory context.
fn assert_passes_bit_equal(mem: &Dataset, pool: &AnalysisContext<'_>) {
    let ctx = AnalysisContext::new(mem);
    let (a, b) = (&ctx, pool);
    let (ca, cb) = (&a.cols, &b.cols);

    assert_eq!(daily::user_days_cols(ca), daily::user_days_cols(cb));
    assert_eq!(apclass::classify_cols(mem, ca), apclass::classify_cols(b.ds, cb));
    assert_eq!(overview::overview(mem, ca), overview::overview(b.ds, cb));
    assert_eq!(timeseries::aggregate_series(mem, ca), timeseries::aggregate_series(b.ds, cb));
    assert_eq!(
        timeseries::venue_series(mem, ca, &a.aps),
        timeseries::venue_series(b.ds, cb, &b.aps)
    );
    assert_eq!(quality::rssi_analysis(ca, &a.aps), quality::rssi_analysis(cb, &b.aps));
    assert_eq!(quality::channel_analysis(ca, &a.aps), quality::channel_analysis(cb, &b.aps));
    assert_eq!(
        availability::detected_public_aps(mem, ca),
        availability::detected_public_aps(b.ds, cb)
    );
    assert_eq!(availability::offload_potential(mem, ca), availability::offload_potential(b.ds, cb));
    for filter in [ClassFilter::All, ClassFilter::Only(TrafficClass::Heavy)] {
        assert_eq!(ratios::wifi_traffic_ratio(a, filter), ratios::wifi_traffic_ratio(b, filter));
        assert_eq!(ratios::wifi_user_ratio(a, filter), ratios::wifi_user_ratio(b, filter));
    }
    assert_eq!(apps::app_breakdown(a, None), apps::app_breakdown(b, None));
    assert_eq!(
        apps::app_breakdown(a, Some(TrafficClass::Light)),
        apps::app_breakdown(b, Some(TrafficClass::Light))
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pool_roundtrip_passes_bit_equal(
        bins in proptest::collection::vec(bin_strategy(), 0..160),
    ) {
        let ds = dataset(bins);
        let (pds, pindex, pcols) = roundtrip(&ds, "prop");
        let pool_ctx = AnalysisContext::from_parts(&pds, pindex, pcols);
        assert_passes_bit_equal(&ds, &pool_ctx);
    }
}

#[test]
fn multi_stream_append_and_reopen() {
    let a = dataset(vec![]);
    let mut bins = Vec::new();
    for d in 0..N_DEV {
        for day in 0..3u32 {
            bins.push(BinRecord {
                device: DeviceId(d),
                time: SimTime::from_day_minute(day, 60 * d),
                rx_3g: u64::from(d) * 1000 + u64::from(day),
                tx_3g: 1,
                rx_lte: 2,
                tx_lte: 3,
                rx_wifi: 4,
                tx_wifi: 5,
                wifi: WifiBinState::OnUnassociated,
                scan: ScanSummary::default(),
                apps: vec![AppBin { category: AppCategory::ALL[1], rx_bytes: 7, tx_bytes: 8 }],
                geo: CellId::new(0, 0),
                os_version: OsVersion::new(4, 4),
            });
        }
    }
    let b = dataset(bins);

    let dir = scratch("multi");
    let path = dir.join("multi.mtpool");
    {
        let mut w = PoolWriter::create(&path).expect("create");
        w.append_dataset(0, &a, &DatasetIndex::build(&a), &DatasetColumns::build(&a))
            .expect("append 0");
        w.commit().expect("commit 1");
    }
    {
        // Second writer session: adopt the published directory, append
        // another stream, publish epoch 2.
        let mut w = PoolWriter::open_append(&path).expect("reopen");
        assert_eq!(w.epoch(), 1);
        w.append_dataset(1, &b, &DatasetIndex::build(&b), &DatasetColumns::build(&b))
            .expect("append 1");
        assert_eq!(w.commit().expect("commit 2"), 2);
    }
    let r = PoolReader::open(&path).expect("open");
    assert_eq!(r.epoch(), 2);
    assert_eq!(r.dataset_streams(), vec![0, 1]);
    assert_eq!(r.decode_dataset(0).expect("ds 0").ds, a);
    assert_eq!(r.decode_dataset(1).expect("ds 1").ds, b);
    let report = r.verify().expect("verify");
    assert_eq!(report.datasets, 2);
    assert_eq!(report.epoch, 2);
    drop(r);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replace_keeps_old_pool_until_finish() {
    let dir = scratch("replace");
    let path = dir.join("replace.mtpool");
    {
        let mut w = PoolWriter::create(&path).expect("create");
        w.append_raw(mobitrace_pool::kind::RAW, 0, 1, b"old-payload").expect("append");
        w.commit().expect("commit");
    }
    // A reader holds a live map of the original pool across the whole
    // replacement — the rename must never invalidate its inode.
    let old = PoolReader::open(&path).expect("open v1");
    assert_eq!(old.raw_segment(0).expect("v1 raw").0, b"old-payload");

    // Abandoned replace (a crash mid-rewrite, minus the crash): the
    // target is untouched and the temp sibling is cleaned up.
    {
        let mut w = PoolWriter::replace(&path).expect("replace");
        w.append_raw(mobitrace_pool::kind::RAW, 0, 1, b"half-written").expect("append");
        // Dropped without finish.
    }
    let names: Vec<_> =
        std::fs::read_dir(&dir).expect("ls").map(|e| e.expect("entry").file_name()).collect();
    assert_eq!(names, vec![std::ffi::OsString::from("replace.mtpool")]);
    assert_eq!(
        PoolReader::open(&path).expect("reopen v1").raw_segment(0).expect("raw").0,
        b"old-payload"
    );

    // Completed replace: new bytes at the path, old map still verifies.
    {
        let mut w = PoolWriter::replace(&path).expect("replace 2");
        w.append_raw(mobitrace_pool::kind::RAW, 0, 1, b"new-payload").expect("append");
        assert_eq!(w.finish().expect("finish"), 1);
    }
    assert_eq!(
        PoolReader::open(&path).expect("open v2").raw_segment(0).expect("raw").0,
        b"new-payload"
    );
    assert_eq!(old.raw_segment(0).expect("old map after replace").0, b"old-payload");
    old.verify().expect("old map verifies after replace");
    drop(old);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_writer_is_excluded_while_first_holds_lock() {
    let dir = scratch("lock");
    let path = dir.join("locked.mtpool");
    let w = PoolWriter::create(&path).expect("create");
    #[cfg(unix)]
    {
        match PoolWriter::open_append(&path) {
            Err(mobitrace_pool::PoolError::Locked { .. }) => {}
            other => panic!("expected Locked, got {:?}", other.map(|_| ())),
        }
    }
    drop(w);
    PoolWriter::open_append(&path).expect("lock released on drop");
    let _ = std::fs::remove_dir_all(&dir);
}
