//! Writer-side fault injection through the `shim` module: injected
//! ENOSPC, short writes, fsync errors and transient blips must surface
//! (or be retried) exactly as specified, and a failed replace must
//! leave the target pool untouched and readable.

use mobitrace_pool::shim::{IoOp, PoolIoShim, Verdict};
use mobitrace_pool::{kind, PoolError, PoolReader, PoolWriter};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mtpool-faults-{}-{:?}-{tag}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Fails the `at`-th operation matching `pred` with `make()`, once.
struct FailNth<F, P> {
    ops: AtomicU64,
    at: u64,
    fired: AtomicU64,
    make: F,
    pred: P,
}

impl<F, P> PoolIoShim for FailNth<F, P>
where
    F: Fn() -> Verdict + Send + Sync,
    P: Fn(IoOp) -> bool + Send + Sync,
{
    fn check(&self, op: IoOp) -> Verdict {
        if !(self.pred)(op) {
            return Verdict::Proceed;
        }
        let n = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
        if n == self.at {
            self.fired.fetch_add(1, Ordering::SeqCst);
            return (self.make)();
        }
        Verdict::Proceed
    }
}

fn fail_nth(
    at: u64,
    pred: impl Fn(IoOp) -> bool + Send + Sync + 'static,
    make: impl Fn() -> Verdict + Send + Sync + 'static,
) -> Arc<FailNth<impl Fn() -> Verdict + Send + Sync, impl Fn(IoOp) -> bool + Send + Sync>> {
    Arc::new(FailNth { ops: AtomicU64::new(0), at, fired: AtomicU64::new(0), make, pred })
}

fn enospc() -> io::Error {
    io::Error::from_raw_os_error(28) // ENOSPC
}

/// Build a small committed pool at `path` under `shim`.
fn build(path: &Path, shim: Option<Arc<dyn PoolIoShim>>) -> Result<u64, PoolError> {
    let mut w = PoolWriter::replace_with(path, shim)?;
    w.append_raw(kind::RAW, 0, 3, b"payload-bytes")?;
    w.finish()
}

#[test]
fn enospc_on_segment_write_fails_and_preserves_target() {
    let dir = scratch("enospc");
    let path = dir.join("p.mtpool");
    build(&path, None).expect("baseline pool");
    let before = std::fs::read(&path).unwrap();

    // Op 2 is the first segment write (op 1 is the header).
    let shim = fail_nth(2, |op| op.is_write(), || Verdict::Fail(enospc()));
    let err = build(&path, Some(shim.clone())).expect_err("injected ENOSPC must surface");
    match err {
        PoolError::Io(e) => assert_eq!(e.raw_os_error(), Some(28)),
        other => panic!("expected Io(ENOSPC), got {other:?}"),
    }
    assert_eq!(shim.fired.load(Ordering::SeqCst), 1);
    // The replace never renamed: target bytes are untouched and readable.
    assert_eq!(std::fs::read(&path).unwrap(), before);
    PoolReader::open(&path).expect("target still a valid pool");
    // The abandoned temp sibling was cleaned up on drop.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
        .collect();
    assert!(leftovers.is_empty(), "temp sibling not cleaned: {leftovers:?}");
}

#[test]
fn short_write_on_directory_is_loud_not_silent() {
    let dir = scratch("short");
    let path = dir.join("p.mtpool");
    // Fail the 3rd write (the directory, after header + segment) short.
    let shim = fail_nth(3, |op| op.is_write(), || Verdict::ShortWrite(4));
    let err = build(&path, Some(shim)).expect_err("short write must error");
    match err {
        PoolError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::WriteZero),
        other => panic!("expected Io(WriteZero), got {other:?}"),
    }
    assert!(!path.exists(), "failed replace must not install the target");
}

#[test]
fn fsync_error_propagates_from_every_sync_point() {
    // Sync points in a replace: header SyncData, commit SyncData x2,
    // pre-rename SyncAll, post-rename DirSync. Each must be loud.
    for at in 1..=5u64 {
        let dir = scratch(&format!("fsync{at}"));
        let path = dir.join("p.mtpool");
        let shim = fail_nth(
            at,
            |op| op.is_sync(),
            || Verdict::Fail(io::Error::other("injected fsync failure")),
        );
        let err =
            build(&path, Some(shim.clone())).expect_err("injected fsync failure must propagate");
        assert!(matches!(err, PoolError::Io(_)), "sync point {at}: {err:?}");
        assert_eq!(shim.fired.load(Ordering::SeqCst), 1, "sync point {at} never reached");
    }
}

#[test]
fn dir_fsync_failure_after_rename_surfaces_but_target_is_installed() {
    let dir = scratch("dirsync");
    let path = dir.join("p.mtpool");
    let shim = fail_nth(
        1,
        |op| op == IoOp::DirSync,
        || Verdict::Fail(io::Error::other("injected dir fsync failure")),
    );
    let err = build(&path, Some(shim)).expect_err("dir fsync failure must surface");
    assert!(matches!(err, PoolError::Io(_)));
    // The rename already happened: the new pool is installed and valid,
    // only its directory entry's durability is in question.
    let r = PoolReader::open(&path).expect("renamed pool is readable");
    assert_eq!(r.segments().len(), 1);
}

#[test]
fn transient_errors_are_retried_once_and_succeed() {
    let dir = scratch("transient");
    let path = dir.join("p.mtpool");
    // Every op fails with Interrupted on its first attempt; the retry
    // (a fresh `check` call) proceeds.
    struct FlakyOnce {
        last: Mutex<Option<IoOp>>,
        injected: AtomicU64,
    }
    impl PoolIoShim for FlakyOnce {
        fn check(&self, op: IoOp) -> Verdict {
            let mut last = self.last.lock().unwrap();
            if *last == Some(op) {
                *last = None;
                Verdict::Proceed
            } else {
                *last = Some(op);
                self.injected.fetch_add(1, Ordering::SeqCst);
                Verdict::Fail(io::Error::new(io::ErrorKind::Interrupted, "blip"))
            }
        }
    }
    let shim = Arc::new(FlakyOnce { last: Mutex::new(None), injected: AtomicU64::new(0) });
    build(&path, Some(shim.clone())).expect("transient blips are absorbed by retry-once");
    assert!(shim.injected.load(Ordering::SeqCst) >= 5, "faults were actually injected");
    let r = PoolReader::open(&path).expect("pool readable after flaky build");
    assert_eq!(r.segments().len(), 1);
}

#[test]
fn persistent_transient_error_still_fails_after_one_retry() {
    let dir = scratch("persistent");
    let path = dir.join("p.mtpool");
    struct AlwaysInterrupted(AtomicU64);
    impl PoolIoShim for AlwaysInterrupted {
        fn check(&self, op: IoOp) -> Verdict {
            if op.is_write() {
                self.0.fetch_add(1, Ordering::SeqCst);
                Verdict::Fail(io::Error::new(io::ErrorKind::Interrupted, "stuck"))
            } else {
                Verdict::Proceed
            }
        }
    }
    let shim = Arc::new(AlwaysInterrupted(AtomicU64::new(0)));
    let err = build(&path, Some(shim.clone())).expect_err("persistent failure surfaces");
    assert!(matches!(err, PoolError::Io(ref e) if e.kind() == io::ErrorKind::Interrupted));
    // Exactly two attempts on the first (header) write: original + retry.
    assert_eq!(shim.0.load(Ordering::SeqCst), 2);
}
