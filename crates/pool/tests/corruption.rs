//! Corruption must fail loudly with a typed [`PoolError`] — never UB,
//! never a release-mode panic: truncated files, flipped segment bytes,
//! future format versions, and torn directory publications.

use mobitrace_model::{
    ApEntry, AppBin, AppCategory, BinRecord, Bssid, CampaignMeta, Carrier, CellId, Dataset,
    DatasetColumns, DatasetIndex, DeviceId, DeviceInfo, Essid, Os, OsVersion, ScanSummary, SimTime,
    WifiBinState, Year,
};
use mobitrace_pool::{PoolError, PoolReader, PoolWriter};
use std::path::{Path, PathBuf};

fn tiny_dataset() -> Dataset {
    let bins = (0..6u32)
        .map(|i| BinRecord {
            device: DeviceId(i % 2),
            time: SimTime::from_day_minute(i / 2, 30 * i),
            rx_3g: u64::from(i) * 11,
            tx_3g: 1,
            rx_lte: 2,
            tx_lte: 3,
            rx_wifi: 4,
            tx_wifi: 5,
            wifi: WifiBinState::OnUnassociated,
            scan: ScanSummary::default(),
            apps: vec![AppBin { category: AppCategory::ALL[0], rx_bytes: 9, tx_bytes: 2 }],
            geo: CellId::new(0, 0),
            os_version: OsVersion::new(4, 4),
        })
        .collect::<Vec<_>>();
    let mut bins = bins;
    bins.sort_by_key(|b| (b.device, b.time));
    Dataset {
        meta: CampaignMeta {
            year: Year::Y2013,
            start: Year::Y2013.campaign_start(),
            days: 7,
            seed: 0,
        },
        devices: (0..2)
            .map(|i| DeviceInfo {
                device: DeviceId(i),
                os: Os::Android,
                carrier: Carrier::ALL[0],
                recruited: true,
                survey: None,
                truth: None,
            })
            .collect(),
        aps: vec![ApEntry { bssid: Bssid::from_u64(1), essid: Essid::new("ap") }],
        bins,
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mtpool-corrupt-{}-{:?}-{tag}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Build a committed single-stream pool; returns its path.
fn build_pool(dir: &Path, commits: u32) -> PathBuf {
    let path = dir.join("c.mtpool");
    let ds = tiny_dataset();
    let index = DatasetIndex::build(&ds);
    let cols = DatasetColumns::build(&ds);
    let mut w = PoolWriter::create(&path).expect("create");
    w.append_dataset(0, &ds, &index, &cols).expect("append");
    w.commit().expect("commit");
    for extra in 1..commits {
        w.append_raw(mobitrace_pool::kind::RAW, extra as u16, 0, b"tail").expect("raw append");
        w.commit().expect("recommit");
    }
    drop(w);
    path
}

#[test]
fn truncated_header_is_typed() {
    let dir = scratch("trunc-header");
    let path = build_pool(&dir, 1);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..64]).unwrap();
    match PoolReader::open(&path) {
        Err(PoolError::Truncated { what: "header", .. }) => {}
        other => panic!("expected header truncation, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_segments_are_typed() {
    let dir = scratch("trunc-seg");
    let path = build_pool(&dir, 1);
    let bytes = std::fs::read(&path).unwrap();
    // Cut mid-data: the directory (written last) is gone, so the slot
    // points past the end of the file.
    std::fs::write(&path, &bytes[..200]).unwrap();
    match PoolReader::open(&path) {
        Err(PoolError::Truncated { .. }) => {}
        other => panic!("expected truncation, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_segment_byte_is_checksum_mismatch() {
    let dir = scratch("bitflip");
    let path = build_pool(&dir, 1);
    // Locate the COUNTERS segment via the intact pool, then flip one
    // byte inside its checksummed payload.
    let target = {
        let r = PoolReader::open(&path).expect("intact open");
        let seg = r
            .segments()
            .iter()
            .find(|s| s.kind == mobitrace_pool::kind::COUNTERS)
            .copied()
            .expect("counters segment present");
        seg.offset as usize + 8
    };
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[target] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let r = PoolReader::open(&path).expect("open still succeeds; payloads are lazy");
    match r.verify() {
        Err(PoolError::ChecksumMismatch { .. }) => {}
        other => panic!("expected checksum mismatch, got {:?}", other.map(|_| ())),
    }
    match r.decode_dataset(0) {
        Err(PoolError::ChecksumMismatch { .. }) => {}
        other => panic!("expected checksum mismatch on decode, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn future_version_is_rejected() {
    let dir = scratch("version");
    let path = build_pool(&dir, 1);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&(mobitrace_pool::VERSION + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match PoolReader::open(&path) {
        Err(PoolError::BadVersion { found, supported }) => {
            assert_eq!(found, mobitrace_pool::VERSION + 1);
            assert_eq!(supported, mobitrace_pool::VERSION);
        }
        other => panic!("expected version rejection, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_magic_is_rejected() {
    let dir = scratch("magic");
    let path = build_pool(&dir, 1);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).unwrap();
    match PoolReader::open(&path) {
        Err(PoolError::BadMagic) => {}
        other => panic!("expected bad magic, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn write of the *newest* slot falls back to the previous epoch:
/// the older publication's directory bytes are append-only and intact.
#[test]
fn torn_newest_slot_falls_back_to_previous_epoch() {
    let dir = scratch("torn-fallback");
    let path = build_pool(&dir, 2); // epochs 1 and 2 published
    let mut bytes = std::fs::read(&path).unwrap();
    // Epoch 2 lives in slot B (offset 56): scribble over it mid-write.
    bytes[60] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let r = PoolReader::open(&path).expect("fallback open");
    assert_eq!(r.epoch(), 1, "should adopt the surviving epoch");
    r.decode_dataset(0).expect("epoch-1 contents intact");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Both slots torn: nothing to fall back to — loud typed error.
#[test]
fn torn_both_slots_is_typed() {
    let dir = scratch("torn-both");
    let path = build_pool(&dir, 2);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[20] ^= 0xFF; // slot A body
    bytes[60] ^= 0xFF; // slot B body
    std::fs::write(&path, &bytes).unwrap();
    match PoolReader::open(&path) {
        Err(PoolError::TornDirectory) => {}
        other => panic!("expected torn directory, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty (never-published) pool opens cleanly with no streams.
#[test]
fn empty_pool_reads_as_no_streams() {
    let dir = scratch("empty");
    let path = dir.join("e.mtpool");
    drop(PoolWriter::create(&path).expect("create"));
    let r = PoolReader::open(&path).expect("open empty");
    assert_eq!(r.epoch(), 0);
    assert!(r.dataset_streams().is_empty());
    match r.decode_dataset(0) {
        Err(PoolError::MissingSegment { .. }) => {}
        other => panic!("expected missing segment, got {:?}", other.map(|_| ())),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
