//! The format must decode at any base alignment: mmap hands back
//! page-aligned memory, but nothing in the codec may rely on that (or
//! on native endianness). These tests (a) decode a whole pool image
//! from deliberately misaligned buffers and (b) pin the implementation
//! rule that no pool source outside the mmap wrapper uses `align_to` or
//! reinterpreting pointer casts.

use mobitrace_model::{
    ApEntry, AppBin, AppCategory, BinRecord, Bssid, CampaignMeta, Carrier, CellId, Dataset,
    DatasetColumns, DatasetIndex, DeviceId, DeviceInfo, Essid, Os, OsVersion, ScanSummary, SimTime,
    WifiBinState, Year,
};
use mobitrace_pool::le::Cursor;
use mobitrace_pool::{PoolReader, PoolWriter};

fn tiny_dataset() -> Dataset {
    let mut bins: Vec<BinRecord> = (0..5u32)
        .map(|i| BinRecord {
            device: DeviceId(i % 2),
            time: SimTime::from_day_minute(i / 2, 17 * i),
            rx_3g: 0x0102_0304_0506_0708 + u64::from(i),
            tx_3g: 1,
            rx_lte: 2,
            tx_lte: 3,
            rx_wifi: 4,
            tx_wifi: 5,
            wifi: WifiBinState::OnUnassociated,
            scan: ScanSummary::default(),
            apps: vec![AppBin { category: AppCategory::ALL[3], rx_bytes: 6, tx_bytes: 7 }],
            geo: CellId::new(-1, 2),
            os_version: OsVersion::new(8, 1),
        })
        .collect();
    bins.sort_by_key(|b| (b.device, b.time));
    Dataset {
        meta: CampaignMeta {
            year: Year::Y2013,
            start: Year::Y2013.campaign_start(),
            days: 7,
            seed: 0,
        },
        devices: (0..2)
            .map(|i| DeviceInfo {
                device: DeviceId(i),
                os: Os::Android,
                carrier: Carrier::ALL[0],
                recruited: true,
                survey: None,
                truth: None,
            })
            .collect(),
        aps: vec![ApEntry { bssid: Bssid::from_u64(7), essid: Essid::new("x") }],
        bins,
    }
}

/// Cursor decodes identically from buffers at every misalignment 1..8
/// relative to an 8-aligned allocation.
#[test]
fn cursor_decodes_at_any_offset() {
    let mut payload = Vec::new();
    for v in [0u64, 1, u64::MAX, 0x0807_0605_0403_0201] {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    payload.extend_from_slice(&0xBEEFu16.to_le_bytes());
    payload.extend_from_slice(&(-1234i16).to_le_bytes());

    for shift in 0..8usize {
        // Vec<u64> backing guarantees 8-byte alignment of the start;
        // shifting the slice start produces every misalignment class.
        let words = vec![0u64; (shift + payload.len()).div_ceil(8) + 1];
        let mut buf: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        buf[shift..shift + payload.len()].copy_from_slice(&payload);
        let mut c = Cursor::new(&buf[shift..shift + payload.len()], "unaligned");
        assert_eq!(c.u64s(4).unwrap(), vec![0, 1, u64::MAX, 0x0807_0605_0403_0201]);
        assert_eq!(c.u16().unwrap(), 0xBEEF);
        assert_eq!(c.i16s(1).unwrap(), vec![-1234]);
        c.finish().unwrap();
    }
}

/// A full pool image decodes bit-identically when served from byte
/// buffers at every misalignment (simulating an arbitrary map base).
#[test]
fn pool_image_decodes_at_any_offset() {
    let dir = std::env::temp_dir().join(format!(
        "mtpool-unaligned-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("u.mtpool");
    let ds = tiny_dataset();
    let index = DatasetIndex::build(&ds);
    let cols = DatasetColumns::build(&ds);
    {
        let mut w = PoolWriter::create(&path).unwrap();
        w.append_dataset(0, &ds, &index, &cols).unwrap();
        w.commit().unwrap();
    }
    let image = std::fs::read(&path).unwrap();

    for shift in 0..8usize {
        // Re-serve the image from a shifted buffer through a scratch
        // file; the decoder path is pure byte-slice access either way,
        // and the result must not depend on where the bytes sat.
        let mut shifted = vec![0xA5u8; shift];
        shifted.extend_from_slice(&image);
        let copy = dir.join(format!("u-{shift}.bin"));
        std::fs::write(&copy, &shifted[shift..]).unwrap();
        let r = PoolReader::open(&copy).unwrap();
        let pd = r.decode_dataset(0).unwrap();
        assert_eq!(pd.ds, ds);
        assert_eq!(pd.cols, cols);
        assert_eq!(pd.index, index);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Implementation rule: outside the mmap wrapper, pool sources must not
/// use `align_to`, `from_raw_parts`, or `transmute` — every read goes
/// through the `from_le_bytes` accessor layer in `le.rs`.
#[test]
fn no_alignment_assumptions_in_sources() {
    let src_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    for entry in std::fs::read_dir(&src_dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        let text = std::fs::read_to_string(&path).unwrap();
        if name == "mmap.rs" {
            continue; // the one place raw pointers are allowed
        }
        for forbidden in ["align_to", "from_raw_parts", "transmute", "as *const", "as *mut"] {
            assert!(
                !text.contains(forbidden),
                "{name} uses `{forbidden}`: pool decoding must stay in the \
                 byte-slice accessor layer"
            );
        }
    }
}
