//! The serialized pool appender.
//!
//! One `PoolWriter` holds the file's exclusive advisory lock for its
//! lifetime, so at most one process appends at a time while any number
//! of [`PoolReader`](crate::PoolReader)s map the same file. Writes are
//! strictly append-only; a publication ([`commit`](PoolWriter::commit))
//! appends the full directory, syncs data, then flips the older header
//! slot to the new epoch and syncs again. A crash at any point leaves
//! the previous epoch intact (unpublished tail bytes are simply
//! overwritten by the next writer).
//!
//! To rewrite a pool from scratch — rather than append to it — use
//! [`PoolWriter::replace`], which stages the new pool in a temp file and
//! installs it with an atomic rename at [`finish`](PoolWriter::finish);
//! the old file survives a crash mid-rewrite and stays mapped-valid for
//! concurrent readers. [`create`](PoolWriter::create) truncates in place
//! and is only safe for paths no reader has open.

use crate::dscodec;
use crate::err::PoolError;
use crate::format::{
    self, align_up, encode_directory, encode_slot, DirSlot, SegDesc, HEADER_LEN, MAGIC,
    SLOT_OFFSETS, VERSION,
};
use crate::mmap::try_lock_exclusive;
use crate::reader::parse_pool;
use crate::shim::{is_transient, IoOp, PoolIoShim, Verdict};
use mobitrace_model::{Dataset, DatasetColumns, DatasetIndex};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Append-only writer over one `.mtpool` file.
pub struct PoolWriter {
    file: File,
    path: PathBuf,
    /// Full directory to publish at the next commit (committed entries
    /// plus appended-but-unpublished ones).
    segs: Vec<SegDesc>,
    /// Last published epoch (0 for a fresh pool).
    epoch: u64,
    /// Append cursor.
    end: u64,
    /// Entries in `segs` already covered by a published directory.
    published: usize,
    /// When set, the writer is building a temp file and
    /// [`finish`](Self::finish) atomically renames it over this path.
    replace_target: Option<PathBuf>,
    /// Optional fault shim consulted before every physical I/O op.
    shim: Option<Arc<dyn PoolIoShim>>,
}

impl PoolWriter {
    /// Create (or truncate) a pool at `path` and take the writer lock.
    ///
    /// **Truncates in place.** `path` must not be a pool that live
    /// readers may currently have mapped: truncation shrinks the inode
    /// under their mapping and the next page fault past the new EOF is
    /// fatal (`SIGBUS`). The "readers stay safe alongside one writer"
    /// guarantee only covers appends to an existing pool
    /// ([`open_append`](Self::open_append)). To rewrite a pool other
    /// processes may be reading — or to replace one that must stay
    /// durable if this process dies mid-write — use
    /// [`replace`](Self::replace) instead, which builds the new pool in
    /// a temp file and atomically renames it into place (existing maps
    /// keep referencing the old inode).
    pub fn create(path: &Path) -> Result<PoolWriter, PoolError> {
        PoolWriter::create_with(path, None)
    }

    /// [`create`](Self::create) with an optional I/O fault shim (see
    /// [`crate::shim`]) installed before the first header write, so a
    /// fault schedule can hit every operation the writer performs.
    pub fn create_with(
        path: &Path,
        shim: Option<Arc<dyn PoolIoShim>>,
    ) -> Result<PoolWriter, PoolError> {
        // Truncation is deferred to the set_len below, *after* the writer
        // lock is held, so losing the lock race never clobbers the file.
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        if !try_lock_exclusive(&file)? {
            return Err(PoolError::Locked { path: path.to_path_buf() });
        }
        file.set_len(0)?;
        let mut w = PoolWriter {
            file,
            path: path.to_path_buf(),
            segs: Vec::new(),
            epoch: 0,
            end: HEADER_LEN,
            published: 0,
            replace_target: None,
            shim,
        };
        let mut header = vec![0u8; HEADER_LEN as usize];
        header[..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(HEADER_LEN as u32).to_le_bytes());
        w.write_at(0, &header)?;
        w.sync(IoOp::SyncData)?;
        Ok(w)
    }

    /// Open an existing pool for appending: takes the lock, adopts the
    /// published directory, and positions the cursor past all published
    /// bytes (a crashed predecessor's unpublished tail is overwritten).
    pub fn open_append(path: &Path) -> Result<PoolWriter, PoolError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        if !try_lock_exclusive(&file)? {
            return Err(PoolError::Locked { path: path.to_path_buf() });
        }
        let bytes = std::fs::read(path)?;
        let parsed = parse_pool(&bytes)?;
        let mut end = HEADER_LEN;
        for s in &parsed.segs {
            end = end.max(s.offset.saturating_add(s.len));
        }
        if let Some(slot) = parsed.slot {
            end = end.max(slot.dir_off.saturating_add(slot.dir_len));
        }
        let published = parsed.segs.len();
        Ok(PoolWriter {
            file,
            path: path.to_path_buf(),
            epoch: parsed.slot.map_or(0, |s| s.epoch),
            segs: parsed.segs,
            end: align_up(end),
            published,
            replace_target: None,
            shim: None,
        })
    }

    /// Build a pool that will *replace* whatever is at `path`, without
    /// disturbing it until publication: writes go to a hidden temp
    /// sibling, and [`finish`](Self::finish) syncs it and atomically
    /// `rename`s it over `path`. A crash at any point — including while
    /// this writer is mid-write — leaves the previous file at `path`
    /// fully intact, and readers holding a map of the old file keep a
    /// valid view of the old inode. Dropping the writer without calling
    /// `finish` removes the temp file and leaves `path` untouched.
    pub fn replace(path: &Path) -> Result<PoolWriter, PoolError> {
        PoolWriter::replace_with(path, None)
    }

    /// [`replace`](Self::replace) with an optional I/O fault shim (see
    /// [`crate::shim`]); fault injection harnesses use this to fail a
    /// checkpoint rewrite at an exact write or sync.
    pub fn replace_with(
        path: &Path,
        shim: Option<Arc<dyn PoolIoShim>>,
    ) -> Result<PoolWriter, PoolError> {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let tmp = path.with_file_name(format!(".{name}.tmp{}", std::process::id()));
        let mut w = PoolWriter::create_with(&tmp, shim)?;
        w.replace_target = Some(path.to_path_buf());
        Ok(w)
    }

    /// Publish everything appended so far and, for a
    /// [`replace`](Self::replace) writer, atomically install the temp
    /// file over the target path (syncing file and directory first).
    /// For a plain [`create`](Self::create)/[`open_append`](Self::open_append)
    /// writer this is just [`commit`](Self::commit) by value. Returns
    /// the published epoch.
    pub fn finish(mut self) -> Result<u64, PoolError> {
        let epoch = self.commit()?;
        if let Some(target) = self.replace_target.take() {
            // Failing before the rename leaves the target untouched; put
            // the replace marker back so Drop removes the temp file.
            if let Err(e) = self.sync(IoOp::SyncAll) {
                self.replace_target = Some(target);
                return Err(e);
            }
            if let Err(e) = std::fs::rename(&self.path, &target) {
                self.replace_target = Some(target);
                return Err(e.into());
            }
            self.path = target;
            // Make the rename itself durable: fsync the parent directory.
            // The new file is already installed at this point, so a
            // failure here is surfaced — the caller must treat the
            // replace as not-yet-durable — but the target is readable
            // and self-consistent either way.
            self.dir_sync()?;
        }
        Ok(epoch)
    }

    /// Fsync the parent directory of the (post-rename) pool path. An
    /// unopenable directory is tolerated (not every filesystem allows
    /// `open` on directories); a *failed* fsync on an open directory
    /// handle is a real durability signal and propagates.
    fn dir_sync(&mut self) -> Result<(), PoolError> {
        let parent = self.path.parent().map(Path::to_path_buf).unwrap_or_default();
        let dir = if parent.as_os_str().is_empty() { PathBuf::from(".") } else { parent };
        let Ok(d) = File::open(&dir) else { return Ok(()) };
        self.with_retry(IoOp::DirSync, |_| d.sync_all())
    }

    /// The pool file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Last published epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Directory entries (published and pending).
    pub fn segments(&self) -> &[SegDesc] {
        &self.segs
    }

    /// Append one raw segment; visible to readers only after
    /// [`commit`](Self::commit).
    pub fn append_raw(
        &mut self,
        kind: u16,
        stream: u16,
        rows: u64,
        payload: &[u8],
    ) -> Result<(), PoolError> {
        let offset = align_up(self.end);
        self.write_at(offset, payload)?;
        self.segs.push(SegDesc {
            kind,
            stream,
            offset,
            len: payload.len() as u64,
            rows,
            hash: format::pool_hash(payload),
        });
        self.end = offset + payload.len() as u64;
        Ok(())
    }

    /// Append a full dataset stream (all columnar segments + metadata +
    /// persisted index) under stream id `stream`. The stream must not
    /// already exist in the pool.
    pub fn append_dataset(
        &mut self,
        stream: u16,
        ds: &Dataset,
        index: &DatasetIndex,
        cols: &DatasetColumns,
    ) -> Result<(), PoolError> {
        if self.segs.iter().any(|s| s.stream == stream && s.kind != format::kind::RAW) {
            return Err(PoolError::Corrupt {
                what: format!("dataset stream {stream} already present in pool"),
            });
        }
        dscodec::encode_dataset(self, stream, ds, index, cols)
    }

    /// Publish everything appended so far: write the directory, sync,
    /// flip the older slot to epoch+1, sync. Returns the new epoch.
    /// A no-op (returning the current epoch) when nothing is pending.
    pub fn commit(&mut self) -> Result<u64, PoolError> {
        if self.published == self.segs.len() && self.epoch != 0 {
            return Ok(self.epoch);
        }
        let dir = encode_directory(&self.segs);
        let dir_off = align_up(self.end);
        self.write_at(dir_off, &dir)?;
        self.end = dir_off + dir.len() as u64;
        self.sync(IoOp::SyncData)?;

        let slot = DirSlot {
            epoch: self.epoch + 1,
            dir_off,
            dir_len: dir.len() as u64,
            dir_hash: format::pool_hash(&dir),
        };
        // Alternate slots: epoch 1 → slot A, epoch 2 → slot B, … so the
        // slot being overwritten is never the one a reader of the
        // current epoch depends on.
        let slot_off = SLOT_OFFSETS[((slot.epoch + 1) % 2) as usize];
        self.write_at(slot_off, &encode_slot(&slot))?;
        self.sync(IoOp::SyncData)?;
        self.epoch = slot.epoch;
        self.published = self.segs.len();
        Ok(self.epoch)
    }

    /// Run one shimmed I/O attempt, retrying exactly once on a transient
    /// error (`Interrupted`/`WouldBlock`/`TimedOut`). The shim is
    /// re-consulted on the retry, so a schedule can also inject
    /// back-to-back failures.
    fn with_retry(
        &self,
        op: IoOp,
        mut f: impl FnMut(&File) -> std::io::Result<()>,
    ) -> Result<(), PoolError> {
        // Sync ops only ever Proceed or Fail; the write path (with its
        // short-write handling) lives in `write_at_once`.
        let mut once = |file: &File| -> std::io::Result<()> {
            if let Some(s) = &self.shim {
                match s.check(op) {
                    Verdict::Proceed => {}
                    Verdict::Fail(e) => return Err(e),
                    Verdict::ShortWrite(_) => {
                        return Err(std::io::Error::other("injected fault on sync op"))
                    }
                }
            }
            f(file)
        };
        match once(&self.file) {
            Err(e) if is_transient(&e) => once(&self.file).map_err(PoolError::Io),
            r => r.map_err(PoolError::Io),
        }
    }

    /// A shimmed sync barrier on the pool file.
    fn sync(&mut self, op: IoOp) -> Result<(), PoolError> {
        self.with_retry(op, |file| match op {
            IoOp::SyncAll => file.sync_all(),
            _ => file.sync_data(),
        })
    }

    fn write_at(&mut self, off: u64, bytes: &[u8]) -> Result<(), PoolError> {
        match self.write_at_once(off, bytes) {
            Err(PoolError::Io(e)) if is_transient(&e) => self.write_at_once(off, bytes),
            r => r,
        }
    }

    /// One positioned-write attempt, routed through the shim. A
    /// [`Verdict::ShortWrite`] persists a prefix then fails — the torn
    /// write a crash between write and sync would leave behind.
    fn write_at_once(&mut self, off: u64, bytes: &[u8]) -> Result<(), PoolError> {
        if let Some(s) = &self.shim {
            match s.check(IoOp::Write { off, len: bytes.len() }) {
                Verdict::Proceed => {}
                Verdict::Fail(e) => return Err(e.into()),
                Verdict::ShortWrite(n) => {
                    let n = n.min(bytes.len());
                    self.file.seek(SeekFrom::Start(off))?;
                    self.file.write_all(&bytes[..n])?;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        format!("injected short write: {n} of {} bytes", bytes.len()),
                    )
                    .into());
                }
            }
        }
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(bytes)?;
        Ok(())
    }
}

impl Drop for PoolWriter {
    fn drop(&mut self) {
        // An abandoned replace (finish never ran, or it failed before the
        // rename) leaves its temp sibling behind; the target was never
        // touched, so the temp is pure garbage — remove it.
        if self.replace_target.is_some() {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}
