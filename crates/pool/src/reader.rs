//! The mmap-backed pool reader.
//!
//! `open` maps the file, validates the header, and adopts the highest
//! valid publication slot — one `O(1)` header read plus a directory
//! decode; no segment bytes are touched until asked for. Segment
//! accesses are bounds-checked against the map and checksum-verified on
//! first touch, so loading a dataset reads each byte exactly once (the
//! checksum pass is the page-fault pass).

use crate::dscodec;
use crate::err::PoolError;
use crate::format::{
    decode_directory, decode_slot, pool_hash, DirSlot, SegDesc, SlotState, HEADER_LEN, MAGIC,
    SLOT_LEN, SLOT_OFFSETS, VERSION,
};
use crate::mmap::PoolMap;
use mobitrace_model::{Dataset, DatasetColumns, DatasetIndex};
use std::path::Path;

/// A decoded header + directory, shared by the reader and the appender's
/// adoption path.
pub struct ParsedPool {
    /// The adopted publication (None for an empty, never-published pool).
    pub slot: Option<DirSlot>,
    /// Directory entries of the adopted epoch.
    pub segs: Vec<SegDesc>,
}

/// Validate the fixed header and decode the live directory out of
/// `bytes` (the whole file).
pub fn parse_pool(bytes: &[u8]) -> Result<ParsedPool, PoolError> {
    if (bytes.len() as u64) < HEADER_LEN {
        return Err(PoolError::Truncated {
            what: "header",
            need: HEADER_LEN,
            have: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(PoolError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version > VERSION {
        return Err(PoolError::BadVersion { found: version, supported: VERSION });
    }
    let mut best: Option<DirSlot> = None;
    let mut torn = false;
    for off in SLOT_OFFSETS {
        let raw = &bytes[off as usize..off as usize + SLOT_LEN];
        match decode_slot(raw) {
            SlotState::Empty => {}
            SlotState::Torn => torn = true,
            SlotState::Valid(s) => {
                if best.is_none_or(|b| s.epoch > b.epoch) {
                    best = Some(s);
                }
            }
        }
    }
    let slot = match best {
        Some(s) => s,
        // No valid slot: an all-empty header is a legal empty pool; any
        // torn slot without a fallback is a loud error.
        None if !torn => return Ok(ParsedPool { slot: None, segs: Vec::new() }),
        None => return Err(PoolError::TornDirectory),
    };
    let end = slot
        .dir_off
        .checked_add(slot.dir_len)
        .ok_or(PoolError::Corrupt { what: "directory range overflows".into() })?;
    if end > bytes.len() as u64 || slot.dir_off < HEADER_LEN {
        return Err(PoolError::Truncated {
            what: "directory",
            need: end,
            have: bytes.len() as u64,
        });
    }
    let dir = &bytes[slot.dir_off as usize..end as usize];
    if pool_hash(dir) != slot.dir_hash {
        // The slot itself checksummed fine but its directory does not:
        // the publication was torn between the two syncs.
        return Err(PoolError::TornDirectory);
    }
    let segs = decode_directory(dir)?;
    for s in &segs {
        let seg_end = s.offset.checked_add(s.len).ok_or(PoolError::Corrupt {
            what: format!("segment kind {} stream {} range overflows", s.kind, s.stream),
        })?;
        if s.offset < HEADER_LEN || seg_end > bytes.len() as u64 {
            return Err(PoolError::Truncated {
                what: "segment",
                need: seg_end,
                have: bytes.len() as u64,
            });
        }
    }
    Ok(ParsedPool { slot: Some(slot), segs })
}

/// A dataset decoded from a pool: exactly the parts
/// `AnalysisContext::from_parts` wants, plus the row table the retained
/// row-scan reference passes still read.
pub struct PoolDataset {
    /// Materialized row table (identical to the dataset that was written).
    pub ds: Dataset,
    /// Persisted per-device / per-day index (no rebuild scan).
    pub index: DatasetIndex,
    /// Columnar view, decoded column-at-a-time from the map.
    pub cols: DatasetColumns,
}

/// Report of a full-pool [`PoolReader::verify`].
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Segments whose checksums were verified.
    pub segments: usize,
    /// Dataset streams decoded and re-validated.
    pub datasets: usize,
    /// Total payload bytes checksummed.
    pub bytes: u64,
    /// Publication epoch verified.
    pub epoch: u64,
    /// Whether the bytes came from an actual memory map.
    pub mapped: bool,
}

/// Read-only view of one pool file. Cheap to open; safe to hold in many
/// processes concurrently with one appender.
pub struct PoolReader {
    map: PoolMap,
    slot: Option<DirSlot>,
    segs: Vec<SegDesc>,
}

impl PoolReader {
    /// Map the file and adopt its latest valid publication.
    pub fn open(path: &Path) -> Result<PoolReader, PoolError> {
        let map = PoolMap::open(path)?;
        let parsed = parse_pool(map.bytes())?;
        Ok(PoolReader { map, slot: parsed.slot, segs: parsed.segs })
    }

    /// Publication epoch (0 when nothing was ever published).
    pub fn epoch(&self) -> u64 {
        self.slot.map_or(0, |s| s.epoch)
    }

    /// The adopted directory.
    pub fn segments(&self) -> &[SegDesc] {
        &self.segs
    }

    /// True when served by a real memory map (not the heap fallback).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Stream ids that carry a dataset (have a META segment), ascending.
    pub fn dataset_streams(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self
            .segs
            .iter()
            .filter(|s| s.kind == crate::format::kind::META)
            .map(|s| s.stream)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Checksum-verified payload bytes of one segment.
    pub fn segment_bytes(&self, kind: u16, stream: u16) -> Result<&[u8], PoolError> {
        let seg = self
            .segs
            .iter()
            .find(|s| s.kind == kind && s.stream == stream)
            .ok_or(PoolError::MissingSegment { kind, stream })?;
        // Ranges were bounds-checked at open; slice cannot fail.
        let payload = &self.map.bytes()[seg.offset as usize..(seg.offset + seg.len) as usize];
        if pool_hash(payload) != seg.hash {
            return Err(PoolError::ChecksumMismatch {
                what: format!("segment kind {kind} stream {stream}"),
            });
        }
        Ok(payload)
    }

    /// Payload and row count of a [`RAW`](crate::format::kind::RAW)
    /// segment (checksum-verified).
    pub fn raw_segment(&self, stream: u16) -> Result<(&[u8], u64), PoolError> {
        let rows = self
            .segs
            .iter()
            .find(|s| s.kind == crate::format::kind::RAW && s.stream == stream)
            .map(|s| s.rows)
            .ok_or(PoolError::MissingSegment { kind: crate::format::kind::RAW, stream })?;
        Ok((self.segment_bytes(crate::format::kind::RAW, stream)?, rows))
    }

    /// Stream ids of all RAW segments, ascending.
    pub fn raw_streams(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self
            .segs
            .iter()
            .filter(|s| s.kind == crate::format::kind::RAW)
            .map(|s| s.stream)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Decode one dataset stream: columns straight off the map, the
    /// persisted index, and the materialized row table — then re-check
    /// the dataset invariants exactly as the JSON load path does.
    pub fn decode_dataset(&self, stream: u16) -> Result<PoolDataset, PoolError> {
        dscodec::decode_dataset(self, stream)
    }

    /// Verify the whole pool: every segment checksum, every dataset
    /// stream decoded and re-validated.
    pub fn verify(&self) -> Result<VerifyReport, PoolError> {
        let mut report = VerifyReport {
            epoch: self.epoch(),
            mapped: self.is_mapped(),
            ..VerifyReport::default()
        };
        for s in &self.segs {
            self.segment_bytes(s.kind, s.stream)?;
            report.segments += 1;
            report.bytes += s.len;
        }
        for stream in self.dataset_streams() {
            self.decode_dataset(stream)?;
            report.datasets += 1;
        }
        Ok(report)
    }
}
