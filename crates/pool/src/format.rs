//! The `.mtpool` on-disk structures: header, publication slots, segment
//! directory, and the checksum.
//!
//! Layout (all integers little-endian; see DESIGN.md §3i):
//!
//! ```text
//! 0    magic "MTPOOL1\0" (8)   version u32   header_len u32
//! 16   slot A (40)             56  slot B (40)        96..128 reserved
//! 128  8-aligned segments, append-only …
//!      … directory (also append-only), pointed at by the live slot
//! ```
//!
//! A *slot* is one atomic publication: `{epoch, dir_off, dir_len,
//! dir_hash, slot_hash}`. The writer appends segments and a fresh
//! directory, syncs, then overwrites the *older* slot with epoch+1 and
//! syncs again. Readers take whichever slot has the highest epoch and a
//! valid `slot_hash`; a torn slot write therefore costs nothing — the
//! previous epoch's slot still points at a complete directory whose
//! bytes are never rewritten. Only if no valid slot exists (and the pool
//! is not simply empty) does the reader report
//! [`PoolError::TornDirectory`].

use crate::err::PoolError;
use crate::le::{Cursor, Enc};

/// File magic: `MTPOOL1\0`.
pub const MAGIC: [u8; 8] = *b"MTPOOL1\0";
/// Current format version.
pub const VERSION: u32 = 1;
/// Fixed header size; segment data starts here.
pub const HEADER_LEN: u64 = 128;
/// Segment start alignment (cheap page-fault-friendly layout; decoding
/// never relies on it — see [`crate::le`]).
pub const ALIGN: u64 = 8;
/// Encoded size of one directory entry.
pub const SEGDESC_LEN: usize = 48;
/// Encoded size of one publication slot.
pub const SLOT_LEN: usize = 40;
/// Offsets of the two slots within the header.
pub const SLOT_OFFSETS: [u64; 2] = [16, 56];

/// Segment kinds. A dataset stream is the fixed set `META..=INDEX`;
/// `RAW` carries opaque payloads (the collector's checkpoint frames).
pub mod kind {
    /// JSON-encoded campaign metadata + device table (cold data).
    pub const META: u16 = 1;
    /// AP table: BSSIDs + ESSID dictionary.
    pub const APS: u16 = 2;
    /// The six per-bin traffic counter columns (u64 each).
    pub const COUNTERS: u16 = 3;
    /// Row identity columns: device, time, geo cell, OS version.
    pub const ROWMETA: u16 = 4;
    /// WiFi state tag + association columns.
    pub const WIFI: u16 = 5;
    /// The eight scan-summary u16 columns.
    pub const SCAN: u16 = 6;
    /// CSR app bins: offsets + (category, rx, tx) columns.
    pub const APPS: u16 = 7;
    /// The two selection vectors (associated / available row indexes).
    pub const SEL: u16 = 8;
    /// Persisted `DatasetIndex` columns.
    pub const INDEX: u16 = 9;
    /// Opaque byte payload (collector checkpoint frames etc.).
    pub const RAW: u16 = 10;
}

/// The checksum used for slots, directories, and segments: FNV-1a run
/// over 8-byte little-endian lanes with the input length folded in, so
/// a zero-padded tail is distinguishable from genuine zeros. One
/// multiply per 8 bytes — fast enough to verify every segment on load.
pub fn pool_hash(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (bytes.len() as u64).wrapping_mul(PRIME);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ u64::from_le_bytes(c.try_into().expect("8 bytes"))).wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    h
}

/// One publication: where the directory of some epoch lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirSlot {
    /// Publication counter; higher wins. Epoch 0 never exists on disk
    /// (an all-zero slot means "nothing published yet").
    pub epoch: u64,
    /// Directory byte offset.
    pub dir_off: u64,
    /// Directory byte length.
    pub dir_len: u64,
    /// [`pool_hash`] of the directory bytes.
    pub dir_hash: u64,
}

/// Decoded state of one slot's bytes.
#[derive(Debug, PartialEq, Eq)]
pub enum SlotState {
    /// All zeros: never published through this slot.
    Empty,
    /// Self-consistent publication.
    Valid(DirSlot),
    /// Nonzero but failing its own checksum — a torn write.
    Torn,
}

/// Encode a slot (with its trailing self-checksum).
pub fn encode_slot(s: &DirSlot) -> [u8; SLOT_LEN] {
    let mut e = Enc::with_capacity(SLOT_LEN);
    e.u64(s.epoch);
    e.u64(s.dir_off);
    e.u64(s.dir_len);
    e.u64(s.dir_hash);
    let body = e.into_bytes();
    let mut out = [0u8; SLOT_LEN];
    out[..32].copy_from_slice(&body);
    out[32..].copy_from_slice(&pool_hash(&body).to_le_bytes());
    out
}

/// Classify one slot's bytes.
pub fn decode_slot(raw: &[u8]) -> SlotState {
    if raw.len() != SLOT_LEN {
        return SlotState::Torn;
    }
    if raw.iter().all(|&b| b == 0) {
        return SlotState::Empty;
    }
    let claimed = u64::from_le_bytes(raw[32..40].try_into().expect("8 bytes"));
    if pool_hash(&raw[..32]) != claimed {
        return SlotState::Torn;
    }
    let mut c = Cursor::new(&raw[..32], "slot");
    let slot = DirSlot {
        epoch: c.u64().expect("32-byte slot body"),
        dir_off: c.u64().expect("32-byte slot body"),
        dir_len: c.u64().expect("32-byte slot body"),
        dir_hash: c.u64().expect("32-byte slot body"),
    };
    if slot.epoch == 0 {
        // Zero epoch with nonzero payload cannot be produced by a
        // correct writer; treat as torn.
        return SlotState::Torn;
    }
    SlotState::Valid(slot)
}

/// One directory entry: a checksummed byte range of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegDesc {
    /// Segment kind (see [`kind`]).
    pub kind: u16,
    /// Stream id: dataset slot for columnar kinds, shard/channel id for
    /// [`kind::RAW`].
    pub stream: u16,
    /// Byte offset of the segment payload.
    pub offset: u64,
    /// Payload length in bytes (excluding alignment padding).
    pub len: u64,
    /// Logical row count (bins, records, …) — informational.
    pub rows: u64,
    /// [`pool_hash`] of the payload.
    pub hash: u64,
}

/// Encode a directory: `count u32, reserved u32`, then the entries.
pub fn encode_directory(segs: &[SegDesc]) -> Vec<u8> {
    let mut e = Enc::with_capacity(8 + segs.len() * SEGDESC_LEN);
    e.u32(u32::try_from(segs.len()).expect("segment count fits u32"));
    e.u32(0);
    for s in segs {
        e.u16(s.kind);
        e.u16(s.stream);
        e.u32(0); // reserved
        e.u64(s.offset);
        e.u64(s.len);
        e.u64(s.rows);
        e.u64(s.hash);
        e.u64(0); // reserved
    }
    e.into_bytes()
}

/// Decode a directory previously produced by [`encode_directory`].
pub fn decode_directory(raw: &[u8]) -> Result<Vec<SegDesc>, PoolError> {
    let mut c = Cursor::new(raw, "directory");
    let count = c.u32()? as usize;
    let _reserved = c.u32()?;
    if c.remaining() != count * SEGDESC_LEN {
        return Err(PoolError::Corrupt {
            what: format!(
                "directory claims {count} segments but carries {} entry bytes",
                c.remaining()
            ),
        });
    }
    let mut segs = Vec::with_capacity(count);
    for _ in 0..count {
        let kind = c.u16()?;
        let stream = c.u16()?;
        let _ = c.u32()?;
        let offset = c.u64()?;
        let len = c.u64()?;
        let rows = c.u64()?;
        let hash = c.u64()?;
        let _ = c.u64()?;
        segs.push(SegDesc { kind, stream, offset, len, rows, hash });
    }
    c.finish()?;
    Ok(segs)
}

/// Round `off` up to the next [`ALIGN`] boundary.
pub fn align_up(off: u64) -> u64 {
    off.div_ceil(ALIGN) * ALIGN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip_and_torn_detection() {
        let s = DirSlot { epoch: 3, dir_off: 4096, dir_len: 200, dir_hash: 0xABCD };
        let raw = encode_slot(&s);
        assert_eq!(decode_slot(&raw), SlotState::Valid(s));
        assert_eq!(decode_slot(&[0u8; SLOT_LEN]), SlotState::Empty);
        let mut torn = raw;
        torn[5] ^= 0xFF;
        assert_eq!(decode_slot(&torn), SlotState::Torn);
    }

    #[test]
    fn directory_roundtrip() {
        let segs = vec![
            SegDesc { kind: kind::META, stream: 0, offset: 128, len: 17, rows: 2, hash: 9 },
            SegDesc { kind: kind::RAW, stream: 7, offset: 152, len: 0, rows: 0, hash: 1 },
        ];
        let raw = encode_directory(&segs);
        assert_eq!(decode_directory(&raw).unwrap(), segs);
        assert!(matches!(decode_directory(&raw[..raw.len() - 1]), Err(PoolError::Corrupt { .. })));
    }

    #[test]
    fn hash_distinguishes_length_from_zero_padding() {
        assert_ne!(pool_hash(&[0u8; 3]), pool_hash(&[0u8; 8]));
        assert_ne!(pool_hash(b"abc"), pool_hash(b"abc\0"));
        assert_eq!(pool_hash(b"abc"), pool_hash(b"abc"));
    }
}
