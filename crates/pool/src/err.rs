//! Typed pool errors.
//!
//! Every way a `.mtpool` file can be malformed — truncation, bit rot,
//! version skew, a torn directory publication — maps to a distinct
//! variant here. The reader's contract is that corrupt input *always*
//! surfaces as one of these, never as a panic or out-of-bounds access,
//! so the corruption tests can assert on variants.

use std::path::PathBuf;

/// Everything that can go wrong opening, reading, or writing a pool.
#[derive(Debug)]
#[non_exhaustive]
pub enum PoolError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the `MTPOOL1\0` magic.
    BadMagic,
    /// The file claims a format version this reader does not support.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
    /// The file is shorter than a structure it claims to contain.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes required.
        need: u64,
        /// Bytes actually available.
        have: u64,
    },
    /// A checksum over a segment or the directory did not match.
    ChecksumMismatch {
        /// What failed verification.
        what: String,
    },
    /// Neither directory slot holds a valid publication (and the pool is
    /// not simply empty): the last directory update was torn and no
    /// earlier epoch survives to fall back to.
    TornDirectory,
    /// Structurally invalid contents inside a checksummed segment (e.g.
    /// inconsistent column lengths) — corruption the checksum cannot see
    /// because it was written that way, or a codec bug.
    Corrupt {
        /// Description of the inconsistency.
        what: String,
    },
    /// A segment the decoder needs is absent from the directory.
    MissingSegment {
        /// Segment kind (see [`crate::format`]).
        kind: u16,
        /// Stream id.
        stream: u16,
    },
    /// Another writer holds the pool's exclusive append lock.
    Locked {
        /// The pool file.
        path: PathBuf,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Io(e) => write!(f, "pool i/o error: {e}"),
            PoolError::BadMagic => write!(f, "not a .mtpool file (bad magic)"),
            PoolError::BadVersion { found, supported } => {
                write!(f, "pool format version {found} not supported (max {supported})")
            }
            PoolError::Truncated { what, need, have } => {
                write!(f, "pool truncated reading {what}: need {need} bytes, have {have}")
            }
            PoolError::ChecksumMismatch { what } => write!(f, "pool checksum mismatch: {what}"),
            PoolError::TornDirectory => {
                write!(f, "pool directory torn: no valid publication slot")
            }
            PoolError::Corrupt { what } => write!(f, "pool segment corrupt: {what}"),
            PoolError::MissingSegment { kind, stream } => {
                write!(f, "pool missing segment kind {kind} for stream {stream}")
            }
            PoolError::Locked { path } => {
                write!(f, "pool {} is locked by another writer", path.display())
            }
        }
    }
}

impl std::error::Error for PoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PoolError {
    fn from(e: std::io::Error) -> PoolError {
        PoolError::Io(e)
    }
}
