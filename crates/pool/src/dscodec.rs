//! Dataset ⇄ segment codec.
//!
//! A dataset stream is written in the exact `DatasetColumns` SoA shapes:
//! each segment concatenates fixed-width little-endian columns whose
//! lengths derive from the directory's row count, so decoding a column
//! is one bulk `from_le_bytes` sweep (a memcpy-class loop on LE
//! targets) into a single allocation — no serde, no per-record parse,
//! no transpose. The only JSON in the format is the cold [`kind::META`]
//! segment (campaign metadata + the survey-bearing device table), which
//! is small and structurally irregular.
//!
//! Decoding re-checks every structural invariant (tags in range, CSR
//! offsets monotone and closed, selection vectors strictly ascending,
//! index consistent with the row count) and finishes with the same
//! `Dataset::validate` the JSON load path runs, so a corrupt-but-
//! checksummed (i.e. miswritten) pool surfaces as
//! [`PoolError::Corrupt`], never a panic downstream.

use crate::err::PoolError;
use crate::format::kind;
use crate::le::{Cursor, Enc};
use crate::reader::{PoolDataset, PoolReader};
use crate::writer::PoolWriter;
use mobitrace_model::{
    ApRef, AppBin, AppCategory, Band, BinRecord, Bssid, CampaignMeta, CellId, Channel, Dataset,
    DatasetColumns, DatasetIndex, Dbm, DeviceId, DeviceInfo, Essid, IndexColumns, OsVersion,
    ScanColumns, ScanSummary, SimTime, WifiAssoc, WifiBinState, WifiTag,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The cold JSON segment: everything that is not a hot column.
#[derive(Serialize, Deserialize)]
struct MetaSeg {
    meta: CampaignMeta,
    devices: Vec<DeviceInfo>,
}

fn corrupt(what: impl Into<String>) -> PoolError {
    PoolError::Corrupt { what: what.into() }
}

/// Encode `band` as its on-disk discriminant.
fn band_u8(b: Band) -> u8 {
    match b {
        Band::Ghz24 => 0,
        Band::Ghz5 => 1,
    }
}

fn band_from_u8(raw: u8) -> Result<Band, PoolError> {
    match raw {
        0 => Ok(Band::Ghz24),
        1 => Ok(Band::Ghz5),
        _ => Err(corrupt(format!("band discriminant {raw}"))),
    }
}

/// Write all segments of one dataset stream.
pub fn encode_dataset(
    w: &mut PoolWriter,
    stream: u16,
    ds: &Dataset,
    index: &DatasetIndex,
    cols: &DatasetColumns,
) -> Result<(), PoolError> {
    let n = ds.bins.len();
    if cols.device.len() != n {
        return Err(corrupt(format!(
            "columns cover {} rows but dataset has {n} bins",
            cols.device.len()
        )));
    }
    let nr = n as u64;

    // META: campaign metadata + device table, JSON (cold).
    let meta =
        serde_json::to_string(&MetaSeg { meta: ds.meta.clone(), devices: ds.devices.clone() })
            .map_err(|e| corrupt(format!("meta encode: {e}")))?;
    w.append_raw(kind::META, stream, ds.devices.len() as u64, meta.as_bytes())?;

    // APS: raw BSSIDs + deduplicated ESSID dictionary.
    {
        let mut names: Vec<&str> = Vec::new();
        let mut ids: HashMap<&str, u32> = HashMap::new();
        let mut name_id = Vec::with_capacity(ds.aps.len());
        for ap in &ds.aps {
            let id = *ids.entry(ap.essid.as_str()).or_insert_with(|| {
                names.push(ap.essid.as_str());
                (names.len() - 1) as u32
            });
            name_id.push(id);
        }
        let name_bytes: usize = names.iter().map(|s| s.len()).sum();
        let mut e = Enc::with_capacity(24 + ds.aps.len() * 12 + names.len() * 4 + name_bytes);
        e.u64(ds.aps.len() as u64);
        e.u64(names.len() as u64);
        e.u64(name_bytes as u64);
        for ap in &ds.aps {
            e.bytes(&ap.bssid.0);
            e.u16(0); // pad each BSSID to 8 bytes
        }
        e.u32s(&name_id);
        let mut off = 0u32;
        let mut offsets = Vec::with_capacity(names.len() + 1);
        offsets.push(0u32);
        for s in &names {
            off += s.len() as u32;
            offsets.push(off);
        }
        e.u32s(&offsets);
        for s in &names {
            e.bytes(s.as_bytes());
        }
        w.append_raw(kind::APS, stream, ds.aps.len() as u64, &e.into_bytes())?;
    }

    // COUNTERS: the six traffic columns.
    {
        let mut e = Enc::with_capacity(n * 48);
        e.u64s(&cols.rx_3g);
        e.u64s(&cols.tx_3g);
        e.u64s(&cols.rx_lte);
        e.u64s(&cols.tx_lte);
        e.u64s(&cols.rx_wifi);
        e.u64s(&cols.tx_wifi);
        w.append_raw(kind::COUNTERS, stream, nr, &e.into_bytes())?;
    }

    // ROWMETA: device, time, geo, OS version.
    {
        let mut e = Enc::with_capacity(n * 14);
        for d in &cols.device {
            e.u32(d.0);
        }
        for t in &cols.time {
            e.u32(t.minute);
        }
        for g in &cols.geo {
            e.u16(g.x as u16);
        }
        for g in &cols.geo {
            e.u16(g.y as u16);
        }
        for v in &cols.os_version {
            e.u8(v.major);
        }
        for v in &cols.os_version {
            e.u8(v.minor);
        }
        w.append_raw(kind::ROWMETA, stream, nr, &e.into_bytes())?;
    }

    // WIFI: state tag + association columns (fillers preserved verbatim).
    {
        let mut e = Enc::with_capacity(n * 9);
        for t in &cols.wifi_tag {
            e.u8(*t as u8);
        }
        for a in &cols.assoc_ap {
            e.u32(a.0);
        }
        for b in &cols.assoc_band {
            e.u8(band_u8(*b));
        }
        for c in &cols.assoc_channel {
            e.u8(c.0);
        }
        let rssi: Vec<i16> = cols.assoc_rssi.iter().map(|d| d.to_tenths()).collect();
        e.i16s(&rssi);
        w.append_raw(kind::WIFI, stream, nr, &e.into_bytes())?;
    }

    // SCAN: eight u16 columns.
    {
        let s = &cols.scan;
        let mut e = Enc::with_capacity(n * 16);
        e.u16s(&s.n24_all);
        e.u16s(&s.n24_strong);
        e.u16s(&s.n5_all);
        e.u16s(&s.n5_strong);
        e.u16s(&s.n24_public_all);
        e.u16s(&s.n24_public_strong);
        e.u16s(&s.n5_public_all);
        e.u16s(&s.n5_public_strong);
        w.append_raw(kind::SCAN, stream, nr, &e.into_bytes())?;
    }

    // APPS: CSR offsets + (category, rx, tx) columns.
    {
        let m = cols.apps.len();
        let mut e = Enc::with_capacity(8 + (n + 1) * 4 + m * 17);
        e.u64(m as u64);
        e.u32s(&cols.app_offsets);
        for a in &cols.apps {
            e.u8(a.category.index() as u8);
        }
        for a in &cols.apps {
            e.u64(a.rx_bytes);
        }
        for a in &cols.apps {
            e.u64(a.tx_bytes);
        }
        w.append_raw(kind::APPS, stream, nr, &e.into_bytes())?;
    }

    // SEL: the two selection vectors.
    {
        let mut e =
            Enc::with_capacity(16 + (cols.sel_associated.len() + cols.sel_available.len()) * 4);
        e.u64(cols.sel_associated.len() as u64);
        e.u64(cols.sel_available.len() as u64);
        e.u32s(&cols.sel_associated);
        e.u32s(&cols.sel_available);
        w.append_raw(kind::SEL, stream, nr, &e.into_bytes())?;
    }

    // INDEX: the persisted DatasetIndex columns.
    {
        let ic = index.to_columns();
        let mut e =
            Enc::with_capacity(16 + (ic.device_start.len() * 2 + ic.span_day.len() * 3) * 4);
        e.u64(ic.device_start.len() as u64);
        e.u64(ic.span_day.len() as u64);
        e.u32s(&ic.device_start);
        e.u32s(&ic.day_offsets);
        e.u32s(&ic.span_day);
        e.u32s(&ic.span_start);
        e.u32s(&ic.span_end);
        w.append_raw(kind::INDEX, stream, nr, &e.into_bytes())?;
    }

    Ok(())
}

/// Decode one dataset stream back into row table + index + columns.
pub fn decode_dataset(r: &PoolReader, stream: u16) -> Result<PoolDataset, PoolError> {
    // Row count: every bin-column segment must agree.
    let mut rows: Option<u64> = None;
    for s in r.segments() {
        if s.stream == stream
            && matches!(
                s.kind,
                kind::COUNTERS | kind::ROWMETA | kind::WIFI | kind::SCAN | kind::APPS | kind::SEL
            )
        {
            match rows {
                None => rows = Some(s.rows),
                Some(n) if n == s.rows => {}
                Some(n) => {
                    return Err(corrupt(format!(
                        "stream {stream}: segment kind {} claims {} rows, others {n}",
                        s.kind, s.rows
                    )))
                }
            }
        }
    }
    let n =
        usize::try_from(rows.ok_or(PoolError::MissingSegment { kind: kind::COUNTERS, stream })?)
            .map_err(|_| corrupt("row count overflows usize"))?;

    // META.
    let meta: MetaSeg = serde_json::from_slice(r.segment_bytes(kind::META, stream)?)
        .map_err(|e| corrupt(format!("meta decode: {e}")))?;

    // APS.
    let aps = {
        let mut c = Cursor::new(r.segment_bytes(kind::APS, stream)?, "aps segment");
        let n_aps = c.len_u64()?;
        let n_names = c.len_u64()?;
        let name_bytes = c.len_u64()?;
        let mut bssids = Vec::with_capacity(n_aps);
        for _ in 0..n_aps {
            let raw = c.bytes(8)?;
            bssids.push(Bssid(raw[..6].try_into().expect("6 bytes")));
        }
        let name_id = c.u32s(n_aps)?;
        let offsets = c.u32s(n_names + 1)?;
        let blob = c.bytes(name_bytes)?;
        c.finish()?;
        if offsets.first() != Some(&0)
            || offsets.last().copied().unwrap_or(1) as usize != name_bytes
        {
            return Err(corrupt("essid dictionary offsets do not close over the blob"));
        }
        let mut names = Vec::with_capacity(n_names);
        for w in offsets.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            if a > b || b > blob.len() {
                return Err(corrupt("essid dictionary offsets not monotone"));
            }
            let s = std::str::from_utf8(&blob[a..b])
                .map_err(|_| corrupt("essid dictionary holds invalid utf-8"))?;
            names.push(Essid::new(s));
        }
        let mut aps = Vec::with_capacity(n_aps);
        for (i, id) in name_id.iter().enumerate() {
            let essid = names
                .get(*id as usize)
                .ok_or_else(|| corrupt(format!("ap {i} references essid {id} out of range")))?
                .clone();
            aps.push(mobitrace_model::ApEntry { bssid: bssids[i], essid });
        }
        aps
    };

    // COUNTERS.
    let mut c = Cursor::new(r.segment_bytes(kind::COUNTERS, stream)?, "counters segment");
    let rx_3g = c.u64s(n)?;
    let tx_3g = c.u64s(n)?;
    let rx_lte = c.u64s(n)?;
    let tx_lte = c.u64s(n)?;
    let rx_wifi = c.u64s(n)?;
    let tx_wifi = c.u64s(n)?;
    c.finish()?;

    // ROWMETA.
    let mut c = Cursor::new(r.segment_bytes(kind::ROWMETA, stream)?, "rowmeta segment");
    let device: Vec<DeviceId> = c.u32s(n)?.into_iter().map(DeviceId).collect();
    let time: Vec<SimTime> = c.u32s(n)?.into_iter().map(|m| SimTime { minute: m }).collect();
    let geo_x = c.u16s(n)?;
    let geo_y = c.u16s(n)?;
    let os_major = c.u8s(n)?.to_vec();
    let os_minor = c.u8s(n)?.to_vec();
    c.finish()?;
    let geo: Vec<CellId> =
        geo_x.iter().zip(&geo_y).map(|(&x, &y)| CellId { x: x as i16, y: y as i16 }).collect();
    let os_version: Vec<OsVersion> =
        os_major.iter().zip(&os_minor).map(|(&major, &minor)| OsVersion { major, minor }).collect();

    // WIFI.
    let mut c = Cursor::new(r.segment_bytes(kind::WIFI, stream)?, "wifi segment");
    let tag_raw = c.u8s(n)?.to_vec();
    let assoc_ap: Vec<ApRef> = c.u32s(n)?.into_iter().map(ApRef).collect();
    let band_raw = c.u8s(n)?.to_vec();
    let assoc_channel: Vec<Channel> = c.u8s(n)?.iter().copied().map(Channel).collect();
    let assoc_rssi: Vec<Dbm> = c.i16s(n)?.into_iter().map(Dbm::from_tenths).collect();
    c.finish()?;
    let mut wifi_tag = Vec::with_capacity(n);
    for (i, &t) in tag_raw.iter().enumerate() {
        wifi_tag
            .push(WifiTag::from_u8(t).ok_or_else(|| corrupt(format!("row {i}: wifi tag {t}")))?);
    }
    let mut assoc_band = Vec::with_capacity(n);
    for &b in &band_raw {
        assoc_band.push(band_from_u8(b)?);
    }

    // SCAN.
    let mut c = Cursor::new(r.segment_bytes(kind::SCAN, stream)?, "scan segment");
    let scan = ScanColumns {
        n24_all: c.u16s(n)?,
        n24_strong: c.u16s(n)?,
        n5_all: c.u16s(n)?,
        n5_strong: c.u16s(n)?,
        n24_public_all: c.u16s(n)?,
        n24_public_strong: c.u16s(n)?,
        n5_public_all: c.u16s(n)?,
        n5_public_strong: c.u16s(n)?,
    };
    c.finish()?;

    // APPS.
    let mut c = Cursor::new(r.segment_bytes(kind::APPS, stream)?, "apps segment");
    let m = c.len_u64()?;
    let app_offsets = c.u32s(n + 1)?;
    let cat_raw = c.u8s(m)?.to_vec();
    let app_rx = c.u64s(m)?;
    let app_tx = c.u64s(m)?;
    c.finish()?;
    if app_offsets.first() != Some(&0) || app_offsets.last().copied().unwrap_or(1) as usize != m {
        return Err(corrupt("app offsets do not close over the app table"));
    }
    if app_offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("app offsets not monotone"));
    }
    let mut apps = Vec::with_capacity(m);
    for i in 0..m {
        let category = AppCategory::from_index(cat_raw[i] as usize)
            .ok_or_else(|| corrupt(format!("app {i}: category {}", cat_raw[i])))?;
        apps.push(AppBin { category, rx_bytes: app_rx[i], tx_bytes: app_tx[i] });
    }

    // SEL.
    let mut c = Cursor::new(r.segment_bytes(kind::SEL, stream)?, "sel segment");
    let n_assoc = c.len_u64()?;
    let n_avail = c.len_u64()?;
    let sel_associated = c.u32s(n_assoc)?;
    let sel_available = c.u32s(n_avail)?;
    c.finish()?;
    for sel in [&sel_associated, &sel_available] {
        if sel.windows(2).any(|w| w[0] >= w[1]) || sel.last().is_some_and(|&i| i as usize >= n) {
            return Err(corrupt("selection vector not strictly ascending within rows"));
        }
    }

    // INDEX.
    let mut c = Cursor::new(r.segment_bytes(kind::INDEX, stream)?, "index segment");
    let nd = c.len_u64()?;
    let ns = c.len_u64()?;
    let ic = IndexColumns {
        device_start: c.u32s(nd)?,
        day_offsets: c.u32s(nd)?,
        span_day: c.u32s(ns)?,
        span_start: c.u32s(ns)?,
        span_end: c.u32s(ns)?,
    };
    c.finish()?;
    let index = DatasetIndex::from_columns(ic).map_err(|e| corrupt(e.to_string()))?;
    if index.n_devices() != meta.devices.len() || index.n_bins() != n {
        return Err(corrupt(format!(
            "index covers {} devices / {} bins, dataset has {} / {n}",
            index.n_devices(),
            index.n_bins(),
            meta.devices.len()
        )));
    }

    // Materialize the row table (the retained row-scan reference passes
    // and the serde-equality tests still read `Dataset::bins`).
    let mut bins = Vec::with_capacity(n);
    for i in 0..n {
        let wifi = match wifi_tag[i] {
            WifiTag::Off => WifiBinState::Off,
            WifiTag::OnUnassociated => WifiBinState::OnUnassociated,
            WifiTag::Associated => WifiBinState::Associated(WifiAssoc {
                ap: assoc_ap[i],
                band: assoc_band[i],
                channel: assoc_channel[i],
                rssi: assoc_rssi[i],
            }),
        };
        let (a, b) = (app_offsets[i] as usize, app_offsets[i + 1] as usize);
        bins.push(BinRecord {
            device: device[i],
            time: time[i],
            rx_3g: rx_3g[i],
            tx_3g: tx_3g[i],
            rx_lte: rx_lte[i],
            tx_lte: tx_lte[i],
            rx_wifi: rx_wifi[i],
            tx_wifi: tx_wifi[i],
            wifi,
            scan: ScanSummary {
                n24_all: scan.n24_all[i],
                n24_strong: scan.n24_strong[i],
                n5_all: scan.n5_all[i],
                n5_strong: scan.n5_strong[i],
                n24_public_all: scan.n24_public_all[i],
                n24_public_strong: scan.n24_public_strong[i],
                n5_public_all: scan.n5_public_all[i],
                n5_public_strong: scan.n5_public_strong[i],
            },
            apps: apps[a..b].to_vec(),
            geo: geo[i],
            os_version: os_version[i],
        });
    }

    let cols = DatasetColumns {
        device,
        time,
        rx_3g,
        tx_3g,
        rx_lte,
        tx_lte,
        rx_wifi,
        tx_wifi,
        wifi_tag,
        assoc_ap,
        assoc_band,
        assoc_channel,
        assoc_rssi,
        scan,
        app_offsets,
        apps,
        geo,
        os_version,
        sel_associated,
        sel_available,
    };

    let ds = Dataset { meta: meta.meta, devices: meta.devices, aps, bins };
    ds.validate().map_err(|e| corrupt(format!("dataset invariants: {e}")))?;
    Ok(PoolDataset { ds, index, cols })
}
