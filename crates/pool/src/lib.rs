//! # mobitrace-pool
//!
//! The memory-mapped single-file columnar pool: `.mtpool`.
//!
//! Re-analysis is the dominant workload of the longitudinal study — the
//! same three campaign years are analyzed many ways — yet JSON
//! persistence pays a full parse + transpose on every load. A pool
//! stores datasets in the exact [`DatasetColumns`] structure-of-arrays
//! shapes with explicit little-endian fixed-width encoding, so loading
//! is an mmap plus one bulk `from_le_bytes` sweep per column (a
//! memcpy-class loop on LE targets) — no serde on the hot columns, no
//! per-record parse, no transpose, and the persisted
//! [`DatasetIndex`] means no re-index either. `mobitrace bench` records
//! the result: analyze-from-pool beats both JSON load and full
//! resimulation (see README "Persistence").
//!
//! Format in one breath (details in `format` and DESIGN.md §3i): a
//! 128-byte header with two checksummed publication slots, append-only
//! 8-aligned segments, an append-only segment directory, per-segment
//! checksums, and atomic publication by flipping the older slot —
//! many concurrent mmap readers stay safe while one locked writer
//! appends.
//!
//! ```no_run
//! use mobitrace_pool::{PoolReader, PoolWriter};
//! # fn demo(ds: &mobitrace_model::Dataset) -> Result<(), mobitrace_pool::PoolError> {
//! let index = mobitrace_model::DatasetIndex::build(ds);
//! let cols = mobitrace_model::DatasetColumns::build(ds);
//! let mut w = PoolWriter::create(std::path::Path::new("campaigns.mtpool"))?;
//! w.append_dataset(0, ds, &index, &cols)?;
//! w.commit()?;
//!
//! let r = PoolReader::open(std::path::Path::new("campaigns.mtpool"))?;
//! let pd = r.decode_dataset(0)?; // → AnalysisContext::from_parts(&pd.ds, pd.index, pd.cols)
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

pub mod dscodec;
pub mod err;
pub mod format;
pub mod le;
pub mod mmap;
pub mod reader;
pub mod shim;
pub mod writer;

pub use err::PoolError;
pub use format::{kind, SegDesc, VERSION};
pub use reader::{PoolDataset, PoolReader, VerifyReport};
pub use shim::{IoOp, PoolIoShim, Verdict};
pub use writer::PoolWriter;

// Doc-link anchors.
#[allow(unused_imports)]
use mobitrace_model::{DatasetColumns, DatasetIndex};
