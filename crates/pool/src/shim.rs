//! Injectable I/O fault shim for the pool writer.
//!
//! Production storage fails in ways unit tests never exercise by
//! accident: the disk fills mid-checkpoint (`ENOSPC`), a write lands
//! short, an `fsync` reports the dirty page it could not retire. The
//! writer consults an optional [`PoolIoShim`] immediately before every
//! physical operation — segment/header/directory writes, data syncs,
//! the full-file sync before a replace-rename, and the parent-directory
//! sync that makes the rename durable — so a deterministic fault
//! schedule can hit any of them at an exact operation ordinal.
//!
//! The shim sees *logical* operations, not file descriptors: it decides
//! [`Verdict::Proceed`], [`Verdict::Fail`] with an injected
//! `io::Error`, or [`Verdict::ShortWrite`] (the writer persists only a
//! prefix, then errors — the torn-write case the pool's checksummed,
//! publish-last format is designed to survive). Transient injected
//! errors also exercise the writer's retry-once path: an
//! `Interrupted`/`WouldBlock`/`TimedOut` failure is retried exactly
//! once before surfacing.
//!
//! The default (no shim installed) costs one `Option` check per I/O
//! call; the production path is untouched.

use std::io;

/// One physical pool I/O operation, as seen by a [`PoolIoShim`] just
/// before it happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A positioned write of `len` bytes at file offset `off` (header,
    /// segment payload, directory, or publication slot).
    Write {
        /// Absolute file offset.
        off: u64,
        /// Bytes about to be written.
        len: usize,
    },
    /// `sync_data` on the pool file (publication barrier).
    SyncData,
    /// `sync_all` on the pool file (pre-rename durability barrier).
    SyncAll,
    /// `sync_all` on the parent directory (makes a replace-rename
    /// durable).
    DirSync,
}

impl IoOp {
    /// Whether this operation is a write (as opposed to a sync barrier).
    pub fn is_write(&self) -> bool {
        matches!(self, IoOp::Write { .. })
    }

    /// Whether this operation is a sync barrier of any kind.
    pub fn is_sync(&self) -> bool {
        !self.is_write()
    }
}

/// A shim's decision for one [`IoOp`].
#[derive(Debug)]
pub enum Verdict {
    /// Perform the operation normally.
    Proceed,
    /// Skip the operation and surface this error instead.
    Fail(io::Error),
    /// Writes only: persist the first `n` bytes, then fail with
    /// `WriteZero` — a torn write. For sync ops this degrades to a
    /// plain failure.
    ShortWrite(usize),
}

/// Consulted by [`PoolWriter`](crate::PoolWriter) before each physical
/// I/O operation. Implementations must be cheap and lock-free-ish: the
/// writer calls this on its hot append path.
pub trait PoolIoShim: Send + Sync {
    /// Decide the fate of `op`.
    fn check(&self, op: IoOp) -> Verdict;
}

/// Whether an I/O error is worth one retry (spurious interruption
/// rather than a persistent storage condition).
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
