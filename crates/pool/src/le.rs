//! The safe little-endian accessor layer.
//!
//! Every read of mapped pool bytes goes through these helpers: plain
//! `from_le_bytes` over byte slices, with no pointer casts and no
//! alignment assumptions, so the format decodes identically on any
//! architecture and any mmap base address (the `unaligned_access` test
//! feeds these deliberately misaligned buffers). Bulk column decodes
//! compile down to a memcpy-class loop on little-endian targets.

use crate::err::PoolError;

/// Sequential reader over a byte slice; all accesses bounds-checked,
/// short reads surface as [`PoolError::Truncated`].
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context string for error messages ("what is being decoded").
    what: &'static str,
}

impl<'a> Cursor<'a> {
    /// Read `buf` from the start; `what` labels truncation errors.
    pub fn new(buf: &'a [u8], what: &'static str) -> Cursor<'a> {
        Cursor { buf, pos: 0, what }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], PoolError> {
        let end = self.pos.checked_add(n).ok_or(PoolError::Truncated {
            what: self.what,
            need: u64::MAX,
            have: self.buf.len() as u64,
        })?;
        let s = self.buf.get(self.pos..end).ok_or(PoolError::Truncated {
            what: self.what,
            need: end as u64,
            have: self.buf.len() as u64,
        })?;
        self.pos = end;
        Ok(s)
    }

    /// One `u8`.
    pub fn u8(&mut self) -> Result<u8, PoolError> {
        Ok(self.bytes(1)?[0])
    }

    /// One little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, PoolError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2 bytes")))
    }

    /// One little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PoolError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    /// One little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PoolError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }

    /// A `u64` length field validated to fit in memory as a count.
    pub fn len_u64(&mut self) -> Result<usize, PoolError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| PoolError::Corrupt {
            what: format!("{}: length {v} overflows usize", self.what),
        })
    }

    /// A column of `n` little-endian `u64`s.
    pub fn u64s(&mut self, n: usize) -> Result<Vec<u64>, PoolError> {
        let raw = self.col_bytes(n, 8)?;
        Ok(raw.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8"))).collect())
    }

    /// A column of `n` little-endian `u32`s.
    pub fn u32s(&mut self, n: usize) -> Result<Vec<u32>, PoolError> {
        let raw = self.col_bytes(n, 4)?;
        Ok(raw.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().expect("4"))).collect())
    }

    /// A column of `n` little-endian `u16`s.
    pub fn u16s(&mut self, n: usize) -> Result<Vec<u16>, PoolError> {
        let raw = self.col_bytes(n, 2)?;
        Ok(raw.chunks_exact(2).map(|c| u16::from_le_bytes(c.try_into().expect("2"))).collect())
    }

    /// A column of `n` little-endian `i16`s.
    pub fn i16s(&mut self, n: usize) -> Result<Vec<i16>, PoolError> {
        let raw = self.col_bytes(n, 2)?;
        Ok(raw.chunks_exact(2).map(|c| i16::from_le_bytes(c.try_into().expect("2"))).collect())
    }

    /// A column of `n` raw bytes.
    pub fn u8s(&mut self, n: usize) -> Result<&'a [u8], PoolError> {
        self.bytes(n)
    }

    /// `n * width` bytes with overflow-checked multiplication.
    fn col_bytes(&mut self, n: usize, width: usize) -> Result<&'a [u8], PoolError> {
        let total = n.checked_mul(width).ok_or_else(|| PoolError::Corrupt {
            what: format!("{}: column of {n} x {width} bytes overflows", self.what),
        })?;
        self.bytes(total)
    }

    /// Error unless the cursor consumed the slice exactly.
    pub fn finish(self) -> Result<(), PoolError> {
        if self.pos != self.buf.len() {
            return Err(PoolError::Corrupt {
                what: format!(
                    "{}: {} trailing bytes after decode",
                    self.what,
                    self.buf.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

/// Append-only little-endian encoder (the writer-side mirror of
/// [`Cursor`]).
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Enc {
        Enc { buf: Vec::with_capacity(cap) }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append one `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append one `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append one `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a `u64` column, little-endian.
    pub fn u64s(&mut self, col: &[u64]) {
        self.buf.reserve(col.len() * 8);
        for v in col {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a `u32` column, little-endian.
    pub fn u32s(&mut self, col: &[u32]) {
        self.buf.reserve(col.len() * 4);
        for v in col {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a `u16` column, little-endian.
    pub fn u16s(&mut self, col: &[u16]) {
        self.buf.reserve(col.len() * 2);
        for v in col {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append an `i16` column, little-endian.
    pub fn i16s(&mut self, col: &[i16]) {
        self.buf.reserve(col.len() * 2);
        for v in col {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_truncation_is_typed() {
        let mut c = Cursor::new(&[1, 2, 3], "t");
        assert_eq!(c.u16().unwrap(), 0x0201);
        match c.u32() {
            Err(PoolError::Truncated { what: "t", need: 6, have: 3 }) => {}
            other => panic!("expected typed truncation, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(0xBEEF);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.i16s(&[-1, 0, 32767, -32768]);
        e.u16s(&[5, 6]);
        e.u32s(&[9]);
        e.u64s(&[10, 11]);
        let b = e.into_bytes();
        let mut c = Cursor::new(&b, "t");
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u16().unwrap(), 0xBEEF);
        assert_eq!(c.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.i16s(4).unwrap(), vec![-1, 0, 32767, -32768]);
        assert_eq!(c.u16s(2).unwrap(), vec![5, 6]);
        assert_eq!(c.u32s(1).unwrap(), vec![9]);
        assert_eq!(c.u64s(2).unwrap(), vec![10, 11]);
        c.finish().unwrap();
    }
}
