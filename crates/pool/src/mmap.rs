//! Read-only memory mapping of a pool file.
//!
//! The only `unsafe` in the crate lives here: a direct binding to the
//! platform's `mmap`/`munmap` (the symbols are always available on Unix
//! because std links the C library), wrapped so the rest of the crate
//! sees nothing but a `&[u8]`. The binding declares the `offset`
//! argument as `i64`, which matches `off_t` only on 64-bit targets (or
//! LFS builds we cannot assume), so the mapped backing is gated on
//! `target_pointer_width = "64"`. Other targets — non-Unix, 32-bit
//! Unix, and zero-length files, which `mmap` rejects — fall back to
//! reading the file into an owned buffer; everything downstream is
//! byte-slice access either way, so the two backings are
//! indistinguishable to the decoder.
//!
//! The map is `PROT_READ`/`MAP_SHARED`: many processes can map the same
//! pool concurrently, and because published bytes of a pool are
//! append-only (segments and directories are never rewritten, only the
//! tiny header slots flip), a reader's view of everything its directory
//! references is immutable for the life of the map.

use std::fs::File;
use std::io::Read;
use std::path::Path;

/// A pool file's bytes: a shared read-only mapping where supported, an
/// owned heap copy otherwise.
pub struct PoolMap {
    backing: Backing,
}

enum Backing {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Owned(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ only and never mutated or remapped
// through this handle; sharing immutable bytes across threads is sound.
unsafe impl Send for PoolMap {}
unsafe impl Sync for PoolMap {}

impl PoolMap {
    /// Map (or read) the whole file.
    pub fn open(path: &Path) -> std::io::Result<PoolMap> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len_usize = usize::try_from(len)
            .map_err(|_| std::io::Error::other("pool file larger than address space"))?;
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            if len_usize > 0 {
                if let Some(ptr) = sys::map_readonly(&file, len_usize) {
                    return Ok(PoolMap { backing: Backing::Mapped { ptr, len: len_usize } });
                }
            }
        }
        let mut buf = Vec::with_capacity(len_usize);
        file.read_to_end(&mut buf)?;
        Ok(PoolMap { backing: Backing::Owned(buf) })
    }

    /// The file contents.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            // SAFETY: ptr/len came from a successful mmap of exactly this
            // length, unmapped only in Drop.
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned(v) => v,
        }
    }

    /// True when the bytes are served by an actual memory map (false on
    /// the heap fallback) — surfaced in `mobitrace pool verify` output.
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }
}

impl Drop for PoolMap {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: this is the unique owner of the mapping.
            unsafe { sys::unmap(ptr, len) };
        }
    }
}

/// Try to take the platform's exclusive advisory lock on an open file
/// (non-blocking). `Ok(false)` means another process holds it. On targets
/// without `flock` this always succeeds; single-writer discipline there
/// rests on the caller.
pub fn try_lock_exclusive(file: &File) -> std::io::Result<bool> {
    #[cfg(unix)]
    {
        sys::flock_exclusive(file)
    }
    #[cfg(not(unix))]
    {
        let _ = file;
        Ok(true)
    }
}

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    // Minimal direct bindings: std already links libc, so the symbols
    // resolve without a bindings crate (none is vendored offline).
    extern "C" {
        fn flock(fd: core::ffi::c_int, operation: core::ffi::c_int) -> core::ffi::c_int;
    }

    // The mmap binding declares `offset: i64`, which matches the
    // platform `off_t` only where off_t is 64-bit; on 32-bit Unix
    // without `_FILE_OFFSET_BITS=64` the ABI would mismatch (UB). Gate
    // the binding to 64-bit targets; everyone else takes the heap read.
    #[cfg(target_pointer_width = "64")]
    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: core::ffi::c_int,
            flags: core::ffi::c_int,
            fd: core::ffi::c_int,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> core::ffi::c_int;
    }

    #[cfg(target_pointer_width = "64")]
    const PROT_READ: core::ffi::c_int = 1;
    #[cfg(target_pointer_width = "64")]
    const MAP_SHARED: core::ffi::c_int = 1;
    const LOCK_EX: core::ffi::c_int = 2;
    const LOCK_NB: core::ffi::c_int = 4;

    /// `mmap(NULL, len, PROT_READ, MAP_SHARED, fd, 0)`; `None` on failure
    /// (the caller falls back to a heap read).
    #[cfg(target_pointer_width = "64")]
    pub fn map_readonly(file: &File, len: usize) -> Option<*const u8> {
        // SAFETY: fd is valid for the duration of the call; a NULL hint
        // with MAP_SHARED|PROT_READ has no further preconditions.
        let p =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_SHARED, file.as_raw_fd(), 0) };
        if p.is_null() || p as isize == -1 {
            None
        } else {
            Some(p as *const u8)
        }
    }

    /// Release a mapping created by [`map_readonly`].
    ///
    /// # Safety
    /// `ptr`/`len` must denote exactly one live mapping returned by
    /// [`map_readonly`], not used after this call.
    #[cfg(target_pointer_width = "64")]
    pub unsafe fn unmap(ptr: *const u8, len: usize) {
        let _ = munmap(ptr as *mut core::ffi::c_void, len);
    }

    /// Non-blocking `flock(LOCK_EX)`; `Ok(false)` when contended. The
    /// lock is tied to the open file description, so a crashed writer
    /// releases it automatically.
    pub fn flock_exclusive(file: &File) -> std::io::Result<bool> {
        // SAFETY: plain syscall on a valid fd.
        let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) };
        if rc == 0 {
            return Ok(true);
        }
        let err = std::io::Error::last_os_error();
        if err.kind() == std::io::ErrorKind::WouldBlock {
            Ok(false)
        } else {
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_read_back() {
        let dir = std::env::temp_dir().join(format!(
            "mtpool-mmap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("x.bin");
        std::fs::write(&p, [1u8, 2, 3, 4, 5]).unwrap();
        let m = PoolMap::open(&p).unwrap();
        assert_eq!(m.bytes(), &[1, 2, 3, 4, 5]);
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(m.is_mapped());
        drop(m);

        // Zero-length files take the owned fallback (mmap rejects them).
        let e = dir.join("empty.bin");
        std::fs::write(&e, []).unwrap();
        let m = PoolMap::open(&e).unwrap();
        assert!(m.bytes().is_empty());
        assert!(!m.is_mapped());
        drop(m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exclusive_lock_excludes_second_holder() {
        let dir = std::env::temp_dir().join(format!(
            "mtpool-lock-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("l.bin");
        std::fs::write(&p, [0u8]).unwrap();
        let a = File::open(&p).unwrap();
        assert!(try_lock_exclusive(&a).unwrap());
        #[cfg(unix)]
        {
            let b = File::open(&p).unwrap();
            assert!(!try_lock_exclusive(&b).unwrap());
        }
        drop(a);
        let b = File::open(&p).unwrap();
        assert!(try_lock_exclusive(&b).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
