//! The deployed AP world of one campaign year.

use crate::ap::{Ap, ApId, Radio, Venue};
use crate::evolution::DeployParams;
use crate::scanplan::{PlanEntry, PlanKey, ScanPlan, PLAN_QUANT_M, PRUNE_SIGMA};
use crate::spatial::SpatialIndex;
use mobitrace_geo::{DensitySurface, GeoPoint, Grid};
use mobitrace_model::{Band, Bssid, Channel, Dbm, Essid, PublicProvider};
use mobitrace_radio::{ChannelPolicy, PathLossModel};
use rand::Rng;
use std::collections::HashMap;

/// Scan sensitivity: radios whose sampled RSSI is below this are invisible.
pub const SCAN_FLOOR: Dbm = Dbm::new(-85);

/// Maximum geometric distance considered for detection (metres). Beyond
/// this the path loss puts any radio under the scan floor.
pub const SCAN_RADIUS_M: f64 = 180.0;

/// Specification for generating a world.
#[derive(Debug, Clone)]
pub struct WorldSpec {
    /// Year parameters.
    pub params: DeployParams,
    /// Homes of participants that own a home AP: (participant index, home).
    pub participant_homes: Vec<(u32, GeoPoint)>,
    /// Sites of offices that deploy a BYOD-accessible AP.
    pub office_sites: Vec<GeoPoint>,
    /// Points of interest around which public/shop APs cluster (stations,
    /// shopping streets). Shared with the mobility model so people and
    /// public APs meet.
    pub pois: mobitrace_geo::PoiSet,
    /// Number of participants (scales public/shop/background counts).
    pub n_participants: usize,
    /// Share of participant home APs that announce the FON public ESSID
    /// instead of a private name (the paper's home-FON exception).
    pub fon_home_share: f64,
}

/// One observation from a WiFi scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanObs {
    /// Which AP.
    pub ap: ApId,
    /// Radio index within the AP.
    pub radio: u8,
    /// Band of the heard beacon.
    pub band: Band,
    /// Channel of the heard beacon.
    pub channel: Channel,
    /// Sampled RSSI.
    pub rssi: Dbm,
}

/// The AP world: all deployed APs plus spatial and ownership indexes.
#[derive(Debug, Clone)]
pub struct ApWorld {
    /// Year parameters the world was generated from.
    pub params: DeployParams,
    /// All APs.
    pub aps: Vec<Ap>,
    /// Participant index → their home AP.
    pub participant_home_ap: HashMap<u32, ApId>,
    /// Office-site APs, parallel to `WorldSpec::office_sites`.
    pub office_aps: Vec<ApId>,
    spatial: SpatialIndex,
    path_loss: PathLossModel,
}

impl ApWorld {
    /// Generate the world for a campaign year.
    pub fn generate<R: Rng + ?Sized>(spec: &WorldSpec, rng: &mut R) -> ApWorld {
        let grid = Grid::greater_tokyo();
        let mut w = ApWorld {
            params: spec.params.clone(),
            aps: Vec::new(),
            participant_home_ap: HashMap::new(),
            office_aps: Vec::new(),
            spatial: SpatialIndex::new(grid.origin, 200.0),
            path_loss: PathLossModel::default_ap(),
        };
        let n = spec.n_participants as f64;

        // Participant home APs (positions known exactly).
        for &(participant, home) in &spec.participant_homes {
            let fon = rng.gen_range(0.0..1.0) < spec.fon_home_share;
            let essid = if fon {
                Essid::new(PublicProvider::Fon.essid())
            } else {
                Essid::new(home_essid(rng))
            };
            let id = w.push_home_ap(rng, Some(participant), home, essid);
            w.participant_home_ap.insert(participant, id);
        }

        // Background (non-participant) home APs fill residential scans.
        let residential = DensitySurface::residential();
        let n_background = (spec.params.background_homes_per_user * n).round() as usize;
        for _ in 0..n_background {
            let pos = residential.sample_point(rng);
            let essid = Essid::new(home_essid(rng));
            w.push_home_ap(rng, None, pos, essid);
        }

        // Public provider APs cluster around POIs: a station or shopping
        // street hosts radios of several providers within ~60 m.
        let n_public = (spec.params.public_aps_per_user * n).round() as usize;
        for k in 0..n_public {
            let provider = PublicProvider::ALL[k % PublicProvider::ALL.len()];
            let poi = spec.pois.sample_point(rng);
            let pos = jitter_around(rng, poi, 60.0);
            let dual = rng.gen_range(0.0..1.0) < spec.params.public_5ghz_share;
            w.push_ap(
                rng,
                Venue::Public(provider),
                pos,
                Essid::new(provider.essid()),
                ChannelPolicy::PlannedOrthogonal,
                dual,
            );
        }

        // Office APs at the given sites.
        for &site in &spec.office_sites {
            let dual = rng.gen_range(0.0..1.0) < spec.params.office_5ghz_share;
            let essid = Essid::new(office_essid(rng));
            let id =
                w.push_ap(rng, Venue::Office, site, essid, ChannelPolicy::AutoLeastCongested, dual);
            w.office_aps.push(id);
        }

        // Shop / hotel open APs, also around POIs but more spread out.
        let n_shop = (spec.params.shop_aps_per_user * n).round() as usize;
        for _ in 0..n_shop {
            let poi = spec.pois.sample_point(rng);
            let pos = jitter_around(rng, poi, 150.0);
            let dual = rng.gen_range(0.0..1.0) < spec.params.public_5ghz_share * 0.5;
            let essid = Essid::new(shop_essid(rng));
            w.push_ap(rng, Venue::Shop, pos, essid, ChannelPolicy::ManualUniform, dual);
        }

        w
    }

    fn push_home_ap<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        participant: Option<u32>,
        pos: GeoPoint,
        essid: Essid,
    ) -> ApId {
        let policy = self.params.sample_home_policy(rng);
        let dual = rng.gen_range(0.0..1.0) < self.params.home_5ghz_share;
        self.push_ap(rng, Venue::Home { participant }, pos, essid, policy, dual)
    }

    fn push_ap<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        venue: Venue,
        pos: GeoPoint,
        essid: Essid,
        policy: ChannelPolicy,
        dual_band: bool,
    ) -> ApId {
        let id = ApId(self.aps.len() as u32);
        // Channel selection against the already-placed neighbourhood.
        let mut neighbour_channels = Vec::new();
        self.spatial.candidates_within(pos, 120.0, |i| {
            let ap = &self.aps[i as usize];
            if ap.pos.distance_km(pos) * 1000.0 <= 120.0 {
                neighbour_channels.extend(ap.radios.iter().map(|r| r.channel));
            }
        });
        let mut radios = vec![Radio {
            bssid: next_bssid(rng),
            band: Band::Ghz24,
            channel: policy.select(rng, Band::Ghz24, &neighbour_channels),
        }];
        if dual_band {
            radios.push(Radio {
                bssid: next_bssid(rng),
                band: Band::Ghz5,
                channel: policy.select(rng, Band::Ghz5, &neighbour_channels),
            });
        }
        self.aps.push(Ap { id, essid, venue, pos, radios });
        self.spatial.insert(id.0, pos);
        id
    }

    /// Look up an AP.
    pub fn ap(&self, id: ApId) -> &Ap {
        &self.aps[id.index()]
    }

    /// Perform a WiFi scan at a position: every radio of every AP within
    /// range whose sampled RSSI clears the scan floor.
    ///
    /// For APs essentially co-located with the device (its own home/office
    /// AP), the geometric distance collapses to ~0; we then draw a
    /// venue-typical indoor distance instead, which is what produces the
    /// paper's Fig. 15 RSSI distributions.
    pub fn scan<R: Rng + ?Sized>(&self, pos: GeoPoint, rng: &mut R) -> Vec<ScanObs> {
        let mut out = Vec::new();
        self.scan_into(pos, rng, &mut out);
        out
    }

    /// [`scan`](Self::scan) into a caller-owned buffer (cleared first) so
    /// the per-bin hot path allocates nothing after warm-up.
    pub fn scan_into<R: Rng + ?Sized>(&self, pos: GeoPoint, rng: &mut R, out: &mut Vec<ScanObs>) {
        out.clear();
        self.spatial.candidates_within(pos, SCAN_RADIUS_M, |i| {
            let ap = &self.aps[i as usize];
            let geom_m = ap.pos.distance_km(pos) * 1000.0;
            if geom_m > SCAN_RADIUS_M {
                return;
            }
            let env = ap.venue.environment();
            let near_m = env.distance_range_m().0;
            for (ri, radio) in ap.radios.iter().enumerate() {
                let d = if geom_m < near_m {
                    self.path_loss.sample_distance_m(rng, env)
                } else {
                    geom_m
                };
                let rssi = self.path_loss.sample_rssi(rng, env, radio.band, d);
                if rssi >= SCAN_FLOOR {
                    out.push(ScanObs {
                        ap: ap.id,
                        radio: ri as u8,
                        band: radio.band,
                        channel: radio.channel,
                        rssi,
                    });
                }
            }
        });
    }

    /// Quantized scan-plan key for a position: `PLAN_QUANT_M`-metre grid
    /// cell indexes keyed off the spatial-index origin.
    pub fn plan_key(&self, pos: GeoPoint) -> PlanKey {
        let (east_m, north_m) = pos.metres_from(self.spatial.origin());
        ((east_m / PLAN_QUANT_M).floor() as i32, (north_m / PLAN_QUANT_M).floor() as i32)
    }

    /// Centre of a plan cell. Plans are always built here — a pure
    /// function of the key — so every thread derives the identical plan.
    pub fn plan_cell_centre(&self, key: PlanKey) -> GeoPoint {
        let east_km = (f64::from(key.0) + 0.5) * PLAN_QUANT_M / 1000.0;
        let north_km = (f64::from(key.1) + 0.5) * PLAN_QUANT_M / 1000.0;
        self.spatial.origin().offset_km(east_km, north_km)
    }

    /// Build the deterministic scan plan for a position: the same
    /// candidate walk as [`scan`](Self::scan), but emitting precomputed
    /// (mean, span, σ) coefficients instead of sampling. Radios whose
    /// best-case mean sits `PRUNE_SIGMA`·σ under the scan floor are
    /// dropped — they cannot produce a visible observation in practice.
    pub fn build_scan_plan(&self, pos: GeoPoint) -> ScanPlan {
        let mut plan = ScanPlan::default();
        self.spatial.candidates_within(pos, SCAN_RADIUS_M, |i| {
            let ap = &self.aps[i as usize];
            let geom_m = ap.pos.distance_km(pos) * 1000.0;
            if geom_m > SCAN_RADIUS_M {
                return;
            }
            let env = ap.venue.environment();
            let public = ap.venue.is_public();
            for (ri, radio) in ap.radios.iter().enumerate() {
                let c = self.path_loss.coeffs(env, radio.band);
                let (mean_db, span_db) = if geom_m < env.distance_range_m().0 {
                    (c.indoor_near_db, c.indoor_span_db)
                } else {
                    (c.mean_db_at(geom_m), 0.0)
                };
                if mean_db - span_db + PRUNE_SIGMA * c.sigma_db < SCAN_FLOOR.as_f64() {
                    continue;
                }
                plan.push(PlanEntry {
                    ap: ap.id,
                    radio: ri as u8,
                    band: radio.band,
                    channel: radio.channel,
                    public,
                    sigma_db: c.sigma_db,
                    mean_db,
                    span_db,
                });
            }
        });
        plan
    }

    /// Background (non-participant) home APs within `radius_m` of a point
    /// — the pool a user's friends and relatives live in.
    pub fn background_homes_near(&self, pos: GeoPoint, radius_m: f64) -> Vec<ApId> {
        let mut out = Vec::new();
        self.background_homes_near_into(pos, radius_m, &mut out);
        out
    }

    /// [`background_homes_near`](Self::background_homes_near) into a
    /// caller-owned buffer (cleared first), sorted by AP id for
    /// deterministic downstream sampling.
    pub fn background_homes_near_into(&self, pos: GeoPoint, radius_m: f64, out: &mut Vec<ApId>) {
        out.clear();
        self.spatial.candidates_within(pos, radius_m, |i| {
            let ap = &self.aps[i as usize];
            if matches!(ap.venue, Venue::Home { participant: None })
                && ap.pos.distance_km(pos) * 1000.0 <= radius_m
            {
                out.push(ap.id);
            }
        });
        out.sort_by_key(|id| id.0);
    }

    /// Count APs by a venue predicate.
    pub fn count_venue(&self, pred: impl Fn(Venue) -> bool) -> usize {
        self.aps.iter().filter(|a| pred(a.venue)).count()
    }
}

/// Gaussian jitter of `sigma_m` metres around a centre point.
fn jitter_around<R: Rng + ?Sized>(rng: &mut R, centre: GeoPoint, sigma_m: f64) -> GeoPoint {
    let gauss = |rng: &mut R| {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let (dx, dy) = (gauss(rng) * sigma_m / 1000.0, gauss(rng) * sigma_m / 1000.0);
    centre.offset_km(dx, dy)
}

fn next_bssid<R: Rng + ?Sized>(rng: &mut R) -> Bssid {
    Bssid::from_u64(rng.gen_range(0..1u64 << 40))
}

fn home_essid<R: Rng + ?Sized>(rng: &mut R) -> String {
    const VENDORS: [&str; 5] = ["aterm", "Buffalo-G", "rt500k", "WARPSTAR", "elecom"];
    format!("{}-{:06x}", VENDORS[rng.gen_range(0..VENDORS.len())], rng.gen_range(0..0x1000000u32))
}

fn office_essid<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!("corp-{:04x}", rng.gen_range(0..0x10000u32))
}

fn shop_essid<R: Rng + ?Sized>(rng: &mut R) -> String {
    const KINDS: [&str; 3] = ["shop_free", "hotel-wifi", "cafe-guest"];
    format!("{}-{:04x}", KINDS[rng.gen_range(0..KINDS.len())], rng.gen_range(0..0x10000u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobitrace_model::{is_public_essid, Year};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_spec() -> WorldSpec {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let res = DensitySurface::residential();
        let office = DensitySurface::office();
        let participant_homes: Vec<(u32, GeoPoint)> =
            (0..40).map(|k| (k, res.sample_point(&mut rng))).collect();
        let office_sites: Vec<GeoPoint> = (0..8).map(|_| office.sample_point(&mut rng)).collect();
        WorldSpec {
            params: DeployParams::for_year(Year::Y2015),
            participant_homes,
            office_sites,
            pois: mobitrace_geo::PoiSet::generate(40, &mut rng),
            n_participants: 50,
            fon_home_share: 0.03,
        }
    }

    #[test]
    fn world_counts_match_spec() {
        let spec = small_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let w = ApWorld::generate(&spec, &mut rng);
        assert_eq!(w.participant_home_ap.len(), 40);
        assert_eq!(w.office_aps.len(), 8);
        let publics = w.count_venue(|v| v.is_public());
        assert_eq!(publics, (9.5f64 * 50.0).round() as usize);
        let homes = w.count_venue(|v| v.is_home());
        assert_eq!(homes, 40 + (30.0f64 * 50.0).round() as usize);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        let w1 = ApWorld::generate(&spec, &mut ChaCha8Rng::seed_from_u64(7));
        let w2 = ApWorld::generate(&spec, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(w1.aps.len(), w2.aps.len());
        for (a, b) in w1.aps.iter().zip(&w2.aps) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn public_aps_have_wellknown_essids() {
        let spec = small_spec();
        let w = ApWorld::generate(&spec, &mut ChaCha8Rng::seed_from_u64(2));
        for ap in &w.aps {
            match ap.venue {
                Venue::Public(_) => assert!(is_public_essid(ap.essid.as_str())),
                Venue::Office | Venue::Shop => {
                    assert!(!is_public_essid(ap.essid.as_str()), "{}", ap.essid)
                }
                Venue::Home { .. } => {} // may be FON
                Venue::MobileRouter => {}
            }
        }
    }

    #[test]
    fn scan_at_home_hears_own_ap() {
        let spec = small_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let w = ApWorld::generate(&spec, &mut rng);
        let (participant, home) = spec.participant_homes[0];
        let own = w.participant_home_ap[&participant];
        // Scans are stochastic (shadowing); the own AP should be heard in
        // the vast majority of bins.
        let mut heard = 0;
        for _ in 0..50 {
            if w.scan(home, &mut rng).iter().any(|o| o.ap == own) {
                heard += 1;
            }
        }
        assert!(heard >= 45, "own home AP heard only {heard}/50 scans");
    }

    #[test]
    fn scan_hears_nothing_in_empty_countryside() {
        let spec = small_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let w = ApWorld::generate(&spec, &mut rng);
        // Far corner of the grid: nothing deployed nearby.
        let nowhere = GeoPoint::new(35.12, 138.92);
        let obs = w.scan(nowhere, &mut rng);
        assert!(obs.len() <= 1, "unexpectedly heard {} APs", obs.len());
    }

    #[test]
    fn dual_band_share_tracks_params() {
        let spec = small_spec();
        let w = ApWorld::generate(&spec, &mut ChaCha8Rng::seed_from_u64(5));
        let publics: Vec<&Ap> = w.aps.iter().filter(|a| a.venue.is_public()).collect();
        let dual = publics.iter().filter(|a| a.has_5ghz()).count() as f64;
        let share = dual / publics.len() as f64;
        assert!((share - 0.60).abs() < 0.12, "public 5GHz share {share}");
        let homes: Vec<&Ap> = w.aps.iter().filter(|a| a.venue.is_home()).collect();
        let dual_home = homes.iter().filter(|a| a.has_5ghz()).count() as f64 / homes.len() as f64;
        assert!(dual_home < 0.30, "home 5GHz share {dual_home}");
    }

    #[test]
    fn public_radios_use_orthogonal_channels() {
        let spec = small_spec();
        let w = ApWorld::generate(&spec, &mut ChaCha8Rng::seed_from_u64(6));
        for ap in w.aps.iter().filter(|a| a.venue.is_public()) {
            let r24 = ap.radio_on(Band::Ghz24).unwrap();
            assert!(Channel::GHZ24_ORTHOGONAL.contains(&r24.channel));
        }
    }

    #[test]
    fn scan_into_matches_scan() {
        let spec = small_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let w = ApWorld::generate(&spec, &mut rng);
        let (_, home) = spec.participant_homes[3];
        let fresh = w.scan(home, &mut ChaCha8Rng::seed_from_u64(21));
        // Dirty, oversized buffer: scan_into must clear and refill it.
        let mut buf = vec![
            ScanObs {
                ap: ApId(999),
                radio: 7,
                band: Band::Ghz5,
                channel: Channel(1),
                rssi: Dbm::new(-20)
            };
            40
        ];
        w.scan_into(home, &mut ChaCha8Rng::seed_from_u64(21), &mut buf);
        assert_eq!(fresh, buf);
    }

    #[test]
    fn background_homes_into_matches_alloc_variant() {
        let spec = small_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let w = ApWorld::generate(&spec, &mut rng);
        let (_, home) = spec.participant_homes[5];
        let fresh = w.background_homes_near(home, 2500.0);
        let mut buf = vec![ApId(12345); 3];
        w.background_homes_near_into(home, 2500.0, &mut buf);
        assert_eq!(fresh, buf);
        assert!(!fresh.is_empty(), "expected background homes within 2.5 km");
    }

    /// Sample a plan repeatedly, collecting RSSI of one (ap, band) entry.
    fn plan_samples(w: &ApWorld, pos: GeoPoint, ap: ApId, band: Band, n: usize) -> Vec<f64> {
        use mobitrace_radio::GaussianPair;
        let plan = w.build_scan_plan(pos);
        assert!(
            plan.entries().any(|e| e.ap == ap && e.band == band),
            "target radio missing from plan"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut gauss = GaussianPair::new();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            plan.sample(&mut rng, &mut gauss, |e, rssi| {
                if e.ap == ap && e.band == band {
                    out.push(rssi.as_f64());
                }
            });
        }
        out
    }

    #[test]
    fn cached_plan_reproduces_home_rssi_distribution() {
        // Fig. 15 shape through the plan path: home ≈ −54 dBm, few < −70.
        let spec = small_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let w = ApWorld::generate(&spec, &mut rng);
        let (participant, home) = spec.participant_homes[0];
        let own = w.participant_home_ap[&participant];
        let pos = w.plan_cell_centre(w.plan_key(home));
        let samples = plan_samples(&w, pos, own, Band::Ghz24, 4000);
        assert!(samples.len() > 3800, "own AP mostly heard, got {}", samples.len());
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let weak = samples.iter().filter(|&&r| r < -70.0).count() as f64 / samples.len() as f64;
        assert!((-58.0..=-50.0).contains(&mean), "home mean {mean}");
        assert!((0.005..=0.06).contains(&weak), "home weak share {weak}");
    }

    #[test]
    fn cached_plan_reproduces_public_rssi_distribution() {
        // Fig. 15 shape through the plan path: public ≈ −60 dBm, ~12% < −70.
        let spec = small_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let w = ApWorld::generate(&spec, &mut rng);
        let ap = w.aps.iter().find(|a| a.venue.is_public()).expect("a public AP");
        let pos = w.plan_cell_centre(w.plan_key(ap.pos));
        let samples = plan_samples(&w, pos, ap.id, Band::Ghz24, 4000);
        assert!(samples.len() > 3600, "public AP mostly heard, got {}", samples.len());
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let weak = samples.iter().filter(|&&r| r < -70.0).count() as f64 / samples.len() as f64;
        assert!((-64.0..=-56.0).contains(&mean), "public mean {mean}");
        assert!((0.07..=0.18).contains(&weak), "public weak share {weak}");
    }

    #[test]
    fn plan_five_ghz_means_attenuate_more() {
        let spec = small_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let w = ApWorld::generate(&spec, &mut rng);
        let mut checked = 0;
        for ap in w.aps.iter().filter(|a| a.has_5ghz()) {
            let plan = w.build_scan_plan(ap.pos);
            let mean_on = |band: Band| {
                plan.entries().find(|e| e.ap == ap.id && e.band == band).map(|e| e.mean_db)
            };
            if let (Some(m24), Some(m5)) = (mean_on(Band::Ghz24), mean_on(Band::Ghz5)) {
                assert!(m24 > m5 + 4.0, "ap {:?}: 2.4GHz {m24} vs 5GHz {m5}", ap.id);
                checked += 1;
            }
        }
        assert!(checked > 10, "only {checked} dual-band APs checked");
    }

    #[test]
    fn plan_covers_every_scanned_radio() {
        // Safety net: nothing the uncached scan can hear may be pruned
        // from the plan built at the same position.
        let spec = small_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let w = ApWorld::generate(&spec, &mut rng);
        for &(_, home) in spec.participant_homes.iter().take(10) {
            let plan = w.build_scan_plan(home);
            for _ in 0..10 {
                for obs in w.scan(home, &mut rng) {
                    assert!(
                        plan.entries().any(|e| e.ap == obs.ap && e.radio == obs.radio),
                        "scanned radio {:?}/{} missing from plan",
                        obs.ap,
                        obs.radio
                    );
                }
            }
        }
    }

    #[test]
    fn plan_cache_is_pure_and_shares_arcs() {
        use crate::scanplan::ScanPlanCache;
        use std::sync::Arc;
        let spec = small_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let w = ApWorld::generate(&spec, &mut rng);
        let key = w.plan_key(spec.participant_homes[1].1);
        let (c1, c2) = (ScanPlanCache::new(), ScanPlanCache::new());
        // Independent caches derive the identical plan for a key …
        assert_eq!(c1.plan(&w, key), c2.plan(&w, key));
        // … and a repeat hit returns the same shared allocation.
        assert!(Arc::ptr_eq(&c1.plan(&w, key), &c1.plan(&w, key)));
        assert_eq!(c1.len(), 1);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used_at_capacity() {
        use crate::scanplan::ScanPlanCache;
        let spec = small_spec();
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let w = ApWorld::generate(&spec, &mut rng);
        let (a, b, c) = ((0, 0), (7, 7), (14, 14));

        let cache = ScanPlanCache::with_capacity(2);
        cache.plan(&w, a);
        cache.plan(&w, b);
        cache.plan(&w, a); // refresh a: b is now the LRU entry
        cache.plan(&w, c); // at capacity → evicts b, not a
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(a) && cache.contains(c) && !cache.contains(b));
        assert_eq!(cache.evictions(), 1);

        // Eviction never changes content: a rebuilt-after-eviction plan
        // equals the one a fresh cache derives for the same key.
        let fresh = ScanPlanCache::new();
        assert_eq!(cache.plan(&w, b), fresh.plan(&w, b));

        // The bound holds under sustained pressure.
        for i in 0..50 {
            cache.plan(&w, (i, -i));
            assert!(cache.len() <= cache.capacity());
        }
    }
}
