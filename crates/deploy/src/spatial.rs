//! A metre-scale spatial hash for AP lookups.
//!
//! WiFi reaches ~100 m while the reporting grid is 5 km, so scan queries
//! need a much finer index than the dataset grid. [`SpatialIndex`] buckets
//! points into `bucket_m`-sized squares keyed off the study-area origin and
//! answers "which items lie within `r` metres of `p`" by scanning the
//! covering bucket window.

use mobitrace_geo::GeoPoint;
use std::collections::HashMap;

/// Spatial hash over item indexes.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    origin: GeoPoint,
    bucket_m: f64,
    map: HashMap<(i32, i32), Vec<u32>>,
    len: usize,
}

impl SpatialIndex {
    /// New empty index. `bucket_m` should be ≥ the typical query radius.
    pub fn new(origin: GeoPoint, bucket_m: f64) -> SpatialIndex {
        assert!(bucket_m > 1.0);
        SpatialIndex { origin, bucket_m, map: HashMap::new(), len: 0 }
    }

    fn bucket_of(&self, p: GeoPoint) -> (i32, i32) {
        let (east_m, north_m) = p.metres_from(self.origin);
        ((east_m / self.bucket_m).floor() as i32, (north_m / self.bucket_m).floor() as i32)
    }

    /// The origin all buckets are keyed off.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Bucket edge length (metres).
    pub fn bucket_m(&self) -> f64 {
        self.bucket_m
    }

    /// Insert an item by index at a position.
    pub fn insert(&mut self, idx: u32, p: GeoPoint) {
        self.map.entry(self.bucket_of(p)).or_default().push(idx);
        self.len += 1;
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Visit every item whose bucket intersects the `radius_m` disc around
    /// `p`. Callers receive candidate indexes and perform the exact
    /// distance check themselves (they usually need the distance anyway).
    ///
    /// Visit order is deterministic: the bucket window is walked
    /// row-by-row and each bucket yields items in insertion order — no
    /// `HashMap` iteration order is ever observable. A zero or negative
    /// radius degrades to the point's own bucket rather than a negative
    /// window span that would skip it entirely.
    pub fn candidates_within(&self, p: GeoPoint, radius_m: f64, mut f: impl FnMut(u32)) {
        let (bx, by) = self.bucket_of(p);
        let span = if radius_m > 0.0 { (radius_m / self.bucket_m).ceil() as i32 } else { 0 };
        for dy in -span..=span {
            for dx in -span..=span {
                if let Some(v) = self.map.get(&(bx + dx, by + dy)) {
                    for &idx in v {
                        f(idx);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> GeoPoint {
        GeoPoint::new(35.10, 138.90)
    }

    #[test]
    fn finds_nearby_items() {
        let mut ix = SpatialIndex::new(origin(), 200.0);
        let base = GeoPoint::new(35.6, 139.7);
        ix.insert(0, base);
        ix.insert(1, base.offset_km(0.05, 0.0)); // 50 m east
        ix.insert(2, base.offset_km(3.0, 0.0)); // 3 km east
        let mut found = vec![];
        ix.candidates_within(base, 150.0, |i| found.push(i));
        found.sort();
        assert!(found.contains(&0) && found.contains(&1));
        assert!(!found.contains(&2));
    }

    #[test]
    fn candidates_superset_of_exact() {
        // Items just beyond the radius may appear as candidates (bucket
        // granularity) but items well inside must always appear.
        let mut ix = SpatialIndex::new(origin(), 100.0);
        let base = GeoPoint::new(35.5, 139.5);
        for k in 0..20 {
            ix.insert(k, base.offset_km(0.004 * f64::from(k), 0.002 * f64::from(k)));
        }
        let mut found = std::collections::HashSet::new();
        ix.candidates_within(base, 60.0, |i| {
            found.insert(i);
        });
        for k in 0..=10u32 {
            // item k is ~k*4.5 m away; k ≤ 10 → ≤ 45 m < 60 m.
            assert!(found.contains(&k), "missing item {k}");
        }
    }

    #[test]
    fn len_tracks_inserts() {
        let mut ix = SpatialIndex::new(origin(), 500.0);
        assert!(ix.is_empty());
        for k in 0..7 {
            ix.insert(k, GeoPoint::new(35.2 + 0.01 * f64::from(k), 139.0));
        }
        assert_eq!(ix.len(), 7);
    }

    #[test]
    fn zero_radius_checks_own_bucket() {
        let mut ix = SpatialIndex::new(origin(), 100.0);
        let p = GeoPoint::new(35.3, 139.3);
        ix.insert(9, p);
        let mut hit = false;
        ix.candidates_within(p, 0.0, |i| hit = i == 9);
        assert!(hit);
    }

    #[test]
    fn negative_radius_degrades_to_own_bucket() {
        let mut ix = SpatialIndex::new(origin(), 100.0);
        let p = GeoPoint::new(35.3, 139.3);
        ix.insert(4, p);
        ix.insert(5, p.offset_km(0.5, 0.0)); // different bucket
        let mut seen = vec![];
        ix.candidates_within(p, -25.0, |i| seen.push(i));
        assert_eq!(seen, vec![4], "negative radius must still visit the own bucket only");
    }

    #[test]
    fn candidate_visit_order_is_deterministic() {
        // Same bucket → insertion order; across buckets → fixed window
        // walk. Repeated queries and clones must agree element-for-element.
        let mut ix = SpatialIndex::new(origin(), 100.0);
        let base = GeoPoint::new(35.4, 139.4);
        for k in [3u32, 1, 4, 1, 5, 9, 2, 6] {
            ix.insert(k, base.offset_km(0.01 * f64::from(k % 3), 0.01 * f64::from(k % 2)));
        }
        let visit = |ix: &SpatialIndex| {
            let mut v = vec![];
            ix.candidates_within(base, 150.0, |i| v.push(i));
            v
        };
        let first = visit(&ix);
        assert_eq!(first, visit(&ix), "repeated query changed order");
        assert_eq!(first, visit(&ix.clone()), "clone changed order");
        assert_eq!(first.len(), 8);
    }
}
