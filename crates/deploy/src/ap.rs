//! Access points.

use mobitrace_geo::GeoPoint;
use mobitrace_model::{Band, Bssid, Channel, Essid, PublicProvider};
use serde::{Deserialize, Serialize};

/// Index of an AP in its [`ApWorld`](crate::world::ApWorld).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ApId(pub u32);

impl ApId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where an AP is installed — the deployment ground truth the paper's
/// home/public/office heuristics try to recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Venue {
    /// In a participant's or a background household's dwelling.
    /// `participant` is the population index of the owning participant, or
    /// `None` for non-participant neighbours.
    Home {
        /// Owning participant (None = background household).
        participant: Option<u32>,
    },
    /// Deployed by a public WiFi provider in a public space.
    Public(PublicProvider),
    /// In a workplace that allows employee devices.
    Office,
    /// A pocket/mobile WiFi router that travels with its owner.
    MobileRouter,
    /// An open AP in a shop, café or hotel (counted under "other" in the
    /// paper's Table 4).
    Shop,
}

impl Venue {
    /// Is this a home AP (participant or background)?
    pub fn is_home(self) -> bool {
        matches!(self, Venue::Home { .. })
    }

    /// Is this a public provider AP?
    pub fn is_public(self) -> bool {
        matches!(self, Venue::Public(_))
    }

    /// Radio environment for path-loss purposes.
    pub fn environment(self) -> mobitrace_radio::Environment {
        match self {
            Venue::Home { .. } => mobitrace_radio::Environment::Home,
            Venue::Office => mobitrace_radio::Environment::Office,
            Venue::Public(_) | Venue::Shop | Venue::MobileRouter => {
                mobitrace_radio::Environment::Public
            }
        }
    }
}

/// One radio of an AP (an AP may host a 2.4 GHz and a 5 GHz radio; each
/// gets its own BSSID, as real dual-band APs do).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Radio {
    /// Radio MAC.
    pub bssid: Bssid,
    /// Band.
    pub band: Band,
    /// Operating channel.
    pub channel: Channel,
}

/// A deployed access point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ap {
    /// World-unique id.
    pub id: ApId,
    /// Network name (same across radios).
    pub essid: Essid,
    /// Deployment venue (ground truth).
    pub venue: Venue,
    /// Exact position (the dataset only ever sees the 5 km cell).
    pub pos: GeoPoint,
    /// Radios: 1 (single band) or 2 (dual band).
    pub radios: Vec<Radio>,
}

impl Ap {
    /// The radio on a band, if present.
    pub fn radio_on(&self, band: Band) -> Option<&Radio> {
        self.radios.iter().find(|r| r.band == band)
    }

    /// Does the AP have a 5 GHz radio?
    pub fn has_5ghz(&self) -> bool {
        self.radio_on(Band::Ghz5).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap(radios: Vec<Radio>) -> Ap {
        Ap {
            id: ApId(0),
            essid: Essid::new("x"),
            venue: Venue::Shop,
            pos: GeoPoint::new(35.6, 139.7),
            radios,
        }
    }

    #[test]
    fn radio_lookup() {
        let r24 = Radio { bssid: Bssid::from_u64(1), band: Band::Ghz24, channel: Channel(6) };
        let r5 = Radio { bssid: Bssid::from_u64(2), band: Band::Ghz5, channel: Channel(36) };
        let dual = ap(vec![r24.clone(), r5.clone()]);
        assert_eq!(dual.radio_on(Band::Ghz24), Some(&r24));
        assert!(dual.has_5ghz());
        let single = ap(vec![r24]);
        assert!(!single.has_5ghz());
    }

    #[test]
    fn venue_predicates() {
        assert!(Venue::Home { participant: None }.is_home());
        assert!(Venue::Public(PublicProvider::Eduroam).is_public());
        assert!(!Venue::Office.is_home());
        assert!(!Venue::Shop.is_public());
    }

    #[test]
    fn venue_environments() {
        use mobitrace_radio::Environment;
        assert_eq!(Venue::Home { participant: Some(3) }.environment(), Environment::Home);
        assert_eq!(Venue::Office.environment(), Environment::Office);
        assert_eq!(Venue::Public(PublicProvider::MetroFree).environment(), Environment::Public);
    }
}
