//! Per-year deployment parameters.
//!
//! Encodes the evolution the paper measures: public AP deployments roughly
//! double from 2013 to 2015 (Table 4), 5 GHz radios roll out aggressively
//! in public spaces but slowly at home/office (Fig. 14), and home APs
//! migrate from the factory-default channel towards auto-selection
//! (Fig. 16).

use mobitrace_model::Year;
use mobitrace_radio::ChannelPolicy;
use serde::{Deserialize, Serialize};

/// Deployment parameters for one campaign year. AP counts are expressed
/// per recruited participant so campaigns of any population size scale
/// consistently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployParams {
    /// Campaign year.
    pub year: Year,
    /// Public provider APs deployed per participant.
    pub public_aps_per_user: f64,
    /// Office APs (BYOD-accessible) per participant.
    pub office_aps_per_user: f64,
    /// Shop/hotel open APs per participant.
    pub shop_aps_per_user: f64,
    /// Background (non-participant) home APs per participant, which fill
    /// the scan lists a device sees at home.
    pub background_homes_per_user: f64,
    /// Probability that a home AP has a 5 GHz radio.
    pub home_5ghz_share: f64,
    /// Probability that an office AP has a 5 GHz radio.
    pub office_5ghz_share: f64,
    /// Probability that a public AP has a 5 GHz radio.
    pub public_5ghz_share: f64,
    /// Channel-policy mix for home APs: (factory-default, manual, auto).
    pub home_channel_mix: (f64, f64, f64),
}

impl DeployParams {
    /// Canonical parameters for a campaign year.
    pub fn for_year(year: Year) -> DeployParams {
        match year {
            // 2013: 5041 public APs associated by ~1700 users → ≈3/user
            // deployed (not every deployed AP is ever associated); 5 GHz
            // rare outside public; home APs cluster on default channel 1.
            Year::Y2013 => DeployParams {
                year,
                public_aps_per_user: 4.5,
                office_aps_per_user: 0.16,
                shop_aps_per_user: 0.5,
                background_homes_per_user: 25.0,
                home_5ghz_share: 0.10,
                office_5ghz_share: 0.12,
                public_5ghz_share: 0.18,
                home_channel_mix: (0.50, 0.30, 0.20),
            },
            Year::Y2014 => DeployParams {
                year,
                public_aps_per_user: 8.5,
                office_aps_per_user: 0.17,
                shop_aps_per_user: 0.6,
                background_homes_per_user: 27.0,
                home_5ghz_share: 0.13,
                office_5ghz_share: 0.13,
                public_5ghz_share: 0.38,
                home_channel_mix: (0.40, 0.30, 0.30),
            },
            // 2015: public deployment doubled; >50% of associated public
            // APs are 5 GHz (Fig. 14); home channel use disperses.
            Year::Y2015 => DeployParams {
                year,
                public_aps_per_user: 9.5,
                office_aps_per_user: 0.17,
                shop_aps_per_user: 0.7,
                background_homes_per_user: 30.0,
                home_5ghz_share: 0.17,
                office_5ghz_share: 0.15,
                public_5ghz_share: 0.60,
                home_channel_mix: (0.28, 0.32, 0.40),
            },
        }
    }

    /// Draw a home-AP channel policy from the year's mix.
    pub fn sample_home_policy<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> ChannelPolicy {
        let (d, m, _a) = self.home_channel_mix;
        let x: f64 = rng.gen_range(0.0..1.0);
        if x < d {
            ChannelPolicy::FactoryDefault
        } else if x < d + m {
            ChannelPolicy::ManualUniform
        } else {
            ChannelPolicy::AutoLeastCongested
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_mix_sums_to_one() {
        for y in Year::ALL {
            let (d, m, a) = DeployParams::for_year(y).home_channel_mix;
            assert!((d + m + a - 1.0).abs() < 1e-9, "{y}");
        }
    }

    #[test]
    fn public_deployment_doubles() {
        let p13 = DeployParams::for_year(Year::Y2013).public_aps_per_user;
        let p15 = DeployParams::for_year(Year::Y2015).public_aps_per_user;
        assert!(p15 / p13 >= 2.0, "public APs should double, got ×{}", p15 / p13);
    }

    #[test]
    fn five_ghz_rollout_shape() {
        for y in Year::ALL {
            let p = DeployParams::for_year(y);
            // Public leads the 5 GHz rollout in every year.
            assert!(p.public_5ghz_share > p.home_5ghz_share, "{y}");
        }
        // Home/office stay below 20% even in 2015 (Fig. 14).
        let p15 = DeployParams::for_year(Year::Y2015);
        assert!(p15.home_5ghz_share < 0.20 && p15.office_5ghz_share < 0.20);
        assert!(p15.public_5ghz_share > 0.5);
    }

    #[test]
    fn default_channel_share_declines() {
        let d13 = DeployParams::for_year(Year::Y2013).home_channel_mix.0;
        let d15 = DeployParams::for_year(Year::Y2015).home_channel_mix.0;
        assert!(d15 < d13);
    }

    #[test]
    fn office_deployment_stable() {
        let o13 = DeployParams::for_year(Year::Y2013).office_aps_per_user;
        let o15 = DeployParams::for_year(Year::Y2015).office_aps_per_user;
        assert!((o13 - o15).abs() / o13 < 0.15, "office APs stable over years");
    }

    #[test]
    fn policy_sampling_covers_mix() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let p = DeployParams::for_year(Year::Y2013);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            match p.sample_home_policy(&mut rng) {
                ChannelPolicy::FactoryDefault => counts[0] += 1,
                ChannelPolicy::ManualUniform => counts[1] += 1,
                ChannelPolicy::AutoLeastCongested => counts[2] += 1,
                ChannelPolicy::PlannedOrthogonal => unreachable!("homes never plan"),
            }
        }
        assert!((counts[0] as f64 / 10_000.0 - 0.50).abs() < 0.03);
        assert!((counts[1] as f64 / 10_000.0 - 0.30).abs() < 0.03);
        assert!((counts[2] as f64 / 10_000.0 - 0.20).abs() < 0.03);
    }
}
