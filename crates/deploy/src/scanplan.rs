//! Position-keyed scan plans: the deterministic half of a WiFi scan,
//! computed once and replayed with fresh shadowing noise every bin.
//!
//! A scan at a fixed position always considers the same candidate radios
//! with the same mean RSSI — only the shadowing (and, indoors, the
//! device↔AP micro-distance) is stochastic. Devices spend most bins at a
//! handful of anchor positions (home, office, friend homes), so the
//! spatial-index walk, the exact distance math and the per-radio
//! coefficient derivation can be hoisted out of the per-bin hot path into
//! a [`ScanPlan`] keyed by a quantized position. Sampling a plan is then
//! pure arithmetic: one uniform draw for indoor entries, one gaussian per
//! entry, a clamp and a floor test.
//!
//! Plans are built from the *cell centre* of the quantized key, never from
//! the query position, so every thread derives the identical plan for a
//! key. That keeps the shared cache free of scheduling effects: a cache
//! hit or miss can change timing but never content, preserving the
//! campaign's cross-thread determinism.

use crate::ap::ApId;
use crate::world::{ApWorld, ScanObs, SCAN_FLOOR};
use mobitrace_model::{Band, Channel, Dbm};
use mobitrace_radio::GaussianPair;
use parking_lot::RwLock;
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Quantized-position key of a scan plan: metre-grid cell indexes
/// (east, north) relative to the world's spatial origin.
pub type PlanKey = (i32, i32);

/// Edge length of the plan quantization grid (metres). Anchor positions
/// repeat exactly, so 1 m merges float jitter without blurring RSSI:
/// moving ≤ 1 m changes the mean by well under the shadowing σ.
pub const PLAN_QUANT_M: f64 = 1.0;

/// Entries whose best-case mean stays `PRUNE_SIGMA` standard deviations
/// under the scan floor are dropped at plan build: detection odds are
/// below 1e-15, statistically invisible over any campaign.
pub(crate) const PRUNE_SIGMA: f64 = 8.0;

/// Default capacity bound for the shared plan cache. Popular cells
/// (stations, offices, dense residential blocks) fit comfortably; beyond
/// the cap the least-recently-used cell is evicted, so city-plus worlds
/// degrade to bounded memory instead of stalling cache fills.
const SHARED_PLAN_CAP: usize = 1 << 15;

/// One candidate radio in a scan plan, with its deterministic signal
/// parameters folded in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEntry {
    /// Which AP.
    pub ap: ApId,
    /// Radio index within the AP.
    pub radio: u8,
    /// Band of the radio's beacon.
    pub band: Band,
    /// Channel of the radio's beacon.
    pub channel: Channel,
    /// Whether the AP is a public-provider venue (pre-resolved so scan
    /// summaries need no AP table lookup per observation).
    pub public: bool,
    /// Shadowing standard deviation σ (dB).
    pub sigma_db: f64,
    /// Mean RSSI (dBm) at the plan position; for indoor entries, the mean
    /// at the *near* edge of the venue's distance range.
    pub mean_db: f64,
    /// Mean-RSSI spread (dB) across the indoor distance range: 0 for
    /// geometric (outdoor) entries, `indoor_span_db` for indoor ones.
    pub span_db: f64,
}

impl PlanEntry {
    /// Materialise a [`ScanObs`] for this entry at a sampled RSSI.
    pub fn obs(&self, rssi: Dbm) -> ScanObs {
        ScanObs { ap: self.ap, radio: self.radio, band: self.band, channel: self.channel, rssi }
    }
}

/// The deterministic candidate list for one quantized position.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanPlan {
    /// Candidate radios in spatial-index visit order (deterministic).
    pub entries: Vec<PlanEntry>,
}

impl ScanPlan {
    /// Sample one scan from the plan: per entry, draw the indoor
    /// micro-distance (one uniform — the mean is linear in it) and the
    /// shadowing deviate, clamp to the chipset range, and emit every
    /// observation clearing the scan floor through `on_obs`.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        gauss: &mut GaussianPair,
        mut on_obs: impl FnMut(&PlanEntry, Dbm),
    ) {
        for e in &self.entries {
            let mean = if e.span_db > 0.0 {
                let u: f64 = rng.gen_range(0.0..1.0);
                e.mean_db - u * e.span_db
            } else {
                e.mean_db
            };
            let rssi = Dbm::from_f64((mean + gauss.sample(rng) * e.sigma_db).clamp(-95.0, -20.0));
            if rssi >= SCAN_FLOOR {
                on_obs(e, rssi);
            }
        }
    }

    /// Number of candidate entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no radio can be heard at this position.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A cached plan plus its last-touched stamp for LRU eviction. The stamp
/// is atomic so hits can bump it under the shared (read) lock.
#[derive(Debug)]
struct PlanSlot {
    plan: Arc<ScanPlan>,
    last_used: AtomicU64,
}

/// Shared, thread-safe, LRU-bounded cache of scan plans for popular cells.
///
/// Reads take a shared lock and bump the entry's recency stamp; a miss
/// builds the plan *outside* any lock (plans are pure functions of
/// world + key, so concurrent builders produce identical plans) and
/// publishes it under the write lock, evicting the least-recently-used
/// cell when the cache is at capacity. Which keys are resident can vary
/// with thread scheduling, but the plan *content* per key never does, so
/// eviction preserves the campaign's cross-thread determinism.
#[derive(Debug)]
pub struct ScanPlanCache {
    shared: RwLock<HashMap<PlanKey, PlanSlot>>,
    /// Monotone logical clock stamped onto entries as they are touched.
    tick: AtomicU64,
    evictions: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    cap: usize,
}

impl Default for ScanPlanCache {
    fn default() -> ScanPlanCache {
        ScanPlanCache::new()
    }
}

impl ScanPlanCache {
    /// New empty cache with the default capacity.
    pub fn new() -> ScanPlanCache {
        ScanPlanCache::with_capacity(SHARED_PLAN_CAP)
    }

    /// New empty cache holding at most `cap` plans (minimum 1).
    pub fn with_capacity(cap: usize) -> ScanPlanCache {
        ScanPlanCache {
            shared: RwLock::new(HashMap::new()),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cap: cap.max(1),
        }
    }

    /// The plan for a quantized position, built and published on miss.
    pub fn plan(&self, world: &ApWorld, key: PlanKey) -> Arc<ScanPlan> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(slot) = self.shared.read().get(&key) {
            slot.last_used.store(now, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&slot.plan);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(world.build_scan_plan(world.plan_cell_centre(key)));
        let mut w = self.shared.write();
        if let Some(slot) = w.get(&key) {
            slot.last_used.store(now, Ordering::Relaxed);
            return Arc::clone(&slot.plan);
        }
        if w.len() >= self.cap {
            // Evict the stalest cell; ties break on the key so eviction
            // order is deterministic for a deterministic access sequence.
            let victim = w
                .iter()
                .map(|(k, s)| (s.last_used.load(Ordering::Relaxed), *k))
                .min()
                .map(|(_, k)| k);
            if let Some(k) = victim {
                w.remove(&k);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        w.insert(key, PlanSlot { plan: Arc::clone(&built), last_used: AtomicU64::new(now) });
        built
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.shared.read().len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of plans retained at once.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whether a plan for `key` is currently resident (recency untouched).
    pub fn contains(&self, key: PlanKey) -> bool {
        self.shared.read().contains_key(&key)
    }

    /// Number of plans evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Lookups served from a resident plan (shared-lock fast path).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build a plan (racy double-builds both count).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}
