//! Position-keyed scan plans: the deterministic half of a WiFi scan,
//! computed once and replayed with fresh shadowing noise every bin.
//!
//! A scan at a fixed position always considers the same candidate radios
//! with the same mean RSSI — only the shadowing (and, indoors, the
//! device↔AP micro-distance) is stochastic. Devices spend most bins at a
//! handful of anchor positions (home, office, friend homes), so the
//! spatial-index walk, the exact distance math and the per-radio
//! coefficient derivation can be hoisted out of the per-bin hot path into
//! a [`ScanPlan`] keyed by a quantized position. Sampling a plan is then
//! pure arithmetic: one uniform draw for indoor entries, one gaussian per
//! entry, a clamp and a floor test.
//!
//! Plans are built from the *cell centre* of the quantized key, never from
//! the query position, so every thread derives the identical plan for a
//! key. That keeps the shared cache free of scheduling effects: a cache
//! hit or miss can change timing but never content, preserving the
//! campaign's cross-thread determinism.

use crate::ap::ApId;
use crate::world::{ApWorld, ScanObs, SCAN_FLOOR};
use mobitrace_model::{Band, Channel, Dbm};
use mobitrace_radio::GaussianPair;
use parking_lot::RwLock;
use rand::Rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Quantized-position key of a scan plan: metre-grid cell indexes
/// (east, north) relative to the world's spatial origin.
pub type PlanKey = (i32, i32);

/// Edge length of the plan quantization grid (metres). Anchor positions
/// repeat exactly, so 1 m merges float jitter without blurring RSSI:
/// moving ≤ 1 m changes the mean by well under the shadowing σ.
pub const PLAN_QUANT_M: f64 = 1.0;

/// Entries whose best-case mean stays `PRUNE_SIGMA` standard deviations
/// under the scan floor are dropped at plan build: detection odds are
/// below 1e-15, statistically invisible over any campaign.
pub(crate) const PRUNE_SIGMA: f64 = 8.0;

/// Default capacity bound for the shared plan cache. Popular cells
/// (stations, offices, dense residential blocks) fit comfortably; beyond
/// the cap the least-recently-used cell is evicted, so city-plus worlds
/// degrade to bounded memory instead of stalling cache fills.
const SHARED_PLAN_CAP: usize = 1 << 15;

/// One candidate radio in a scan plan, with its deterministic signal
/// parameters folded in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEntry {
    /// Which AP.
    pub ap: ApId,
    /// Radio index within the AP.
    pub radio: u8,
    /// Band of the radio's beacon.
    pub band: Band,
    /// Channel of the radio's beacon.
    pub channel: Channel,
    /// Whether the AP is a public-provider venue (pre-resolved so scan
    /// summaries need no AP table lookup per observation).
    pub public: bool,
    /// Shadowing standard deviation σ (dB).
    pub sigma_db: f64,
    /// Mean RSSI (dBm) at the plan position; for indoor entries, the mean
    /// at the *near* edge of the venue's distance range.
    pub mean_db: f64,
    /// Mean-RSSI spread (dB) across the indoor distance range: 0 for
    /// geometric (outdoor) entries, `indoor_span_db` for indoor ones.
    pub span_db: f64,
}

impl PlanEntry {
    /// Materialise a [`ScanObs`] for this entry at a sampled RSSI.
    pub fn obs(&self, rssi: Dbm) -> ScanObs {
        ScanObs { ap: self.ap, radio: self.radio, band: self.band, channel: self.channel, rssi }
    }
}

/// The deterministic candidate list for one quantized position, stored
/// structure-of-arrays: the replay hot loop touches only the three `f64`
/// coefficient columns (contiguous, lane-friendly), while the identity
/// columns are read only for entries that clear the scan floor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanPlan {
    aps: Vec<ApId>,
    radios: Vec<u8>,
    bands: Vec<Band>,
    channels: Vec<Channel>,
    publics: Vec<bool>,
    sigma_db: Vec<f64>,
    mean_db: Vec<f64>,
    span_db: Vec<f64>,
}

/// Block width of the two-phase replay loop: stack buffers for the drawn
/// deviates and the computed RSSI, so sampling allocates nothing.
const SAMPLE_BLOCK: usize = 64;

impl ScanPlan {
    /// Build a plan from entries in spatial-index visit order.
    pub fn from_entries(entries: impl IntoIterator<Item = PlanEntry>) -> ScanPlan {
        let mut plan = ScanPlan::default();
        for e in entries {
            plan.push(e);
        }
        plan
    }

    /// Append one candidate entry.
    pub fn push(&mut self, e: PlanEntry) {
        self.aps.push(e.ap);
        self.radios.push(e.radio);
        self.bands.push(e.band);
        self.channels.push(e.channel);
        self.publics.push(e.public);
        self.sigma_db.push(e.sigma_db);
        self.mean_db.push(e.mean_db);
        self.span_db.push(e.span_db);
    }

    /// Materialise the row form of entry `i`.
    pub fn entry(&self, i: usize) -> PlanEntry {
        PlanEntry {
            ap: self.aps[i],
            radio: self.radios[i],
            band: self.bands[i],
            channel: self.channels[i],
            public: self.publics[i],
            sigma_db: self.sigma_db[i],
            mean_db: self.mean_db[i],
            span_db: self.span_db[i],
        }
    }

    /// Iterate the entries in plan order (materialised rows).
    pub fn entries(&self) -> impl Iterator<Item = PlanEntry> + '_ {
        (0..self.len()).map(|i| self.entry(i))
    }

    /// Sample one scan from the plan: per entry, draw the indoor
    /// micro-distance (one uniform — the mean is linear in it) and the
    /// shadowing deviate, clamp to the chipset range, and emit every
    /// observation clearing the scan floor through `on_obs`.
    ///
    /// Runs in [`SAMPLE_BLOCK`]-entry blocks of three phases. Phase 1
    /// draws the deviates in strict entry order — one uniform for indoor
    /// (`span_db > 0`) entries, then the gaussian — so the RNG stream is
    /// bit-identical to [`sample_scalar`](Self::sample_scalar). Phase 2 is
    /// the pure lane math `(mean - u·span) + g·σ` over the coefficient
    /// columns (outdoor entries use `u = 0`, and `x - 0.0·span == x`
    /// exactly, so the association matches the scalar form). Phase 3
    /// floor-tests and emits in entry order.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        gauss: &mut GaussianPair,
        mut on_obs: impl FnMut(&PlanEntry, Dbm),
    ) {
        let n = self.len();
        let mut u = [0.0f64; SAMPLE_BLOCK];
        let mut g = [0.0f64; SAMPLE_BLOCK];
        let mut rs = [0.0f64; SAMPLE_BLOCK];
        let mut start = 0usize;
        while start < n {
            let m = SAMPLE_BLOCK.min(n - start);
            for k in 0..m {
                u[k] = if self.span_db[start + k] > 0.0 { rng.gen_range(0.0..1.0) } else { 0.0 };
                g[k] = gauss.sample(rng);
            }
            for k in 0..m {
                rs[k] = ((self.mean_db[start + k] - u[k] * self.span_db[start + k])
                    + g[k] * self.sigma_db[start + k])
                    .clamp(-95.0, -20.0);
            }
            for (k, &r) in rs.iter().enumerate().take(m) {
                let rssi = Dbm::from_f64(r);
                if rssi >= SCAN_FLOOR {
                    on_obs(&self.entry(start + k), rssi);
                }
            }
            start += m;
        }
    }

    /// Scalar reference for [`sample`](Self::sample) — the original
    /// entry-at-a-time loop, kept for the replay equivalence tests and
    /// benchmarks.
    pub fn sample_scalar<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        gauss: &mut GaussianPair,
        mut on_obs: impl FnMut(&PlanEntry, Dbm),
    ) {
        for i in 0..self.len() {
            let e = self.entry(i);
            let mean = if e.span_db > 0.0 {
                let u: f64 = rng.gen_range(0.0..1.0);
                e.mean_db - u * e.span_db
            } else {
                e.mean_db
            };
            let rssi = Dbm::from_f64((mean + gauss.sample(rng) * e.sigma_db).clamp(-95.0, -20.0));
            if rssi >= SCAN_FLOOR {
                on_obs(&e, rssi);
            }
        }
    }

    /// Number of candidate entries.
    pub fn len(&self) -> usize {
        self.aps.len()
    }

    /// True if no radio can be heard at this position.
    pub fn is_empty(&self) -> bool {
        self.aps.is_empty()
    }
}

/// A cached plan plus its last-touched stamp for LRU eviction. The stamp
/// is atomic so hits can bump it under the shared (read) lock.
#[derive(Debug)]
struct PlanSlot {
    plan: Arc<ScanPlan>,
    last_used: AtomicU64,
}

/// Shared, thread-safe, LRU-bounded cache of scan plans for popular cells.
///
/// Reads take a shared lock and bump the entry's recency stamp; a miss
/// builds the plan *outside* any lock (plans are pure functions of
/// world + key, so concurrent builders produce identical plans) and
/// publishes it under the write lock, evicting the least-recently-used
/// cell when the cache is at capacity. Which keys are resident can vary
/// with thread scheduling, but the plan *content* per key never does, so
/// eviction preserves the campaign's cross-thread determinism.
#[derive(Debug)]
pub struct ScanPlanCache {
    shared: RwLock<HashMap<PlanKey, PlanSlot>>,
    /// Monotone logical clock stamped onto entries as they are touched.
    tick: AtomicU64,
    evictions: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    cap: usize,
}

impl Default for ScanPlanCache {
    fn default() -> ScanPlanCache {
        ScanPlanCache::new()
    }
}

impl ScanPlanCache {
    /// New empty cache with the default capacity.
    pub fn new() -> ScanPlanCache {
        ScanPlanCache::with_capacity(SHARED_PLAN_CAP)
    }

    /// New empty cache holding at most `cap` plans (minimum 1).
    pub fn with_capacity(cap: usize) -> ScanPlanCache {
        ScanPlanCache {
            shared: RwLock::new(HashMap::new()),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cap: cap.max(1),
        }
    }

    /// The plan for a quantized position, built and published on miss.
    pub fn plan(&self, world: &ApWorld, key: PlanKey) -> Arc<ScanPlan> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(slot) = self.shared.read().get(&key) {
            slot.last_used.store(now, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&slot.plan);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(world.build_scan_plan(world.plan_cell_centre(key)));
        let mut w = self.shared.write();
        if let Some(slot) = w.get(&key) {
            slot.last_used.store(now, Ordering::Relaxed);
            return Arc::clone(&slot.plan);
        }
        if w.len() >= self.cap {
            // Evict the stalest cell; ties break on the key so eviction
            // order is deterministic for a deterministic access sequence.
            let victim = w
                .iter()
                .map(|(k, s)| (s.last_used.load(Ordering::Relaxed), *k))
                .min()
                .map(|(_, k)| k);
            if let Some(k) = victim {
                w.remove(&k);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        w.insert(key, PlanSlot { plan: Arc::clone(&built), last_used: AtomicU64::new(now) });
        built
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.shared.read().len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of plans retained at once.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whether a plan for `key` is currently resident (recency untouched).
    pub fn contains(&self, key: PlanKey) -> bool {
        self.shared.read().contains_key(&key)
    }

    /// Number of plans evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Lookups served from a resident plan (shared-lock fast path).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build a plan (racy double-builds both count).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Synthetic plan of `n` entries mixing indoor (span > 0) and outdoor
    /// (span == 0) rows, with means straddling the scan floor so both
    /// emitted and suppressed observations occur.
    fn synthetic_plan(n: usize) -> ScanPlan {
        ScanPlan::from_entries((0..n).map(|i| PlanEntry {
            ap: ApId(i as u32),
            radio: (i % 2) as u8,
            band: if i % 2 == 0 { Band::Ghz24 } else { Band::Ghz5 },
            channel: Channel((i % 13 + 1) as u8),
            public: i % 3 == 0,
            sigma_db: 4.0 + (i % 5) as f64,
            mean_db: -60.0 - (i % 40) as f64,
            span_db: if i % 2 == 0 { 12.0 } else { 0.0 },
        }))
    }

    #[test]
    fn blocked_sample_matches_scalar_for_every_tail_shape() {
        // Non-multiples of SAMPLE_BLOCK exercise the tail block; the plans
        // mix indoor and outdoor entries so the uniform draw is skipped
        // for some entries, stressing the RNG stream alignment.
        for n in [0usize, 1, 2, 63, 64, 65, 127, 128, 200] {
            let plan = synthetic_plan(n);
            let mut obs_blocked = Vec::new();
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            let mut gauss = GaussianPair::new();
            for _ in 0..20 {
                plan.sample(&mut rng, &mut gauss, |e, r| obs_blocked.push((*e, r)));
            }
            let mut obs_scalar = Vec::new();
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            let mut gauss = GaussianPair::new();
            for _ in 0..20 {
                plan.sample_scalar(&mut rng, &mut gauss, |e, r| obs_scalar.push((*e, r)));
            }
            assert_eq!(obs_blocked, obs_scalar, "n = {n}");
            // The shared RNG stream must also end at the same point.
            assert_eq!(rng.gen_range(0..u64::MAX), {
                let mut rng2 = ChaCha8Rng::seed_from_u64(42);
                let mut gauss2 = GaussianPair::new();
                for _ in 0..20 {
                    plan.sample_scalar(&mut rng2, &mut gauss2, |_, _| {});
                }
                rng2.gen_range(0..u64::MAX)
            });
        }
    }

    #[test]
    fn all_outdoor_plan_draws_no_uniforms() {
        // An all-outdoor plan (span == 0 everywhere) must leave u = 0 and
        // read only the gaussian stream, matching the scalar path exactly.
        let plan = ScanPlan::from_entries((0..70).map(|i| PlanEntry {
            ap: ApId(i),
            radio: 0,
            band: Band::Ghz24,
            channel: Channel(1),
            public: false,
            sigma_db: 6.0,
            mean_db: -80.0,
            span_db: 0.0,
        }));
        let run = |scalar: bool| {
            let mut out = Vec::new();
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let mut gauss = GaussianPair::new();
            if scalar {
                plan.sample_scalar(&mut rng, &mut gauss, |e, r| out.push((e.ap, r)));
            } else {
                plan.sample(&mut rng, &mut gauss, |e, r| out.push((e.ap, r)));
            }
            out
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn entries_round_trip_push() {
        let plan = synthetic_plan(9);
        assert_eq!(plan.len(), 9);
        assert!(!plan.is_empty());
        let rows: Vec<PlanEntry> = plan.entries().collect();
        assert_eq!(ScanPlan::from_entries(rows.iter().copied()), plan);
        assert_eq!(plan.entry(4), rows[4]);
    }
}
