//! # mobitrace-deploy
//!
//! The WiFi access-point world: which APs exist, where, on which band and
//! channel, and how that evolved across the 2013–2015 campaigns. The world
//! is generated per campaign from per-year [`DeployParams`] — public AP
//! deployments double, 5 GHz rolls out aggressively in public spaces
//! (Fig. 14), home APs drift away from factory-default channel 1
//! (Fig. 16) — and is queried by the simulator through a metre-scale
//! spatial index ([`SpatialIndex`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ap;
pub mod evolution;
pub mod scanplan;
pub mod spatial;
pub mod world;

pub use ap::{Ap, ApId, Venue};
pub use evolution::DeployParams;
pub use scanplan::{PlanEntry, PlanKey, ScanPlan, ScanPlanCache};
pub use spatial::SpatialIndex;
pub use world::ApWorld;
