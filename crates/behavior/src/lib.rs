//! # mobitrace-behavior
//!
//! The population model: who the ~1600 recruited users are and how they
//! behave. Demographics follow the paper's Table 2; each user gets a
//! [`Persona`] (OS, home/office geography, WiFi attitude, traffic appetite,
//! app-category affinities), a daily [`schedule`], a traffic [`demand`]
//! process calibrated to the paper's Table 3 volumes, an app-mix model
//! behind Tables 6/7, an iOS-update adoption model (§3.7) and a survey
//! response model (Tables 8/9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appmix;
pub mod demand;
pub mod demographics;
pub mod params;
pub mod persona;
pub mod schedule;
pub mod survey;
pub mod update;

pub use appmix::{AppContext, AppMix};
pub use demand::DemandModel;
pub use demographics::sample_occupation;
pub use params::BehaviorParams;
pub use persona::{Persona, WifiAttitude};
pub use schedule::{Activity, DaySchedule};
pub use survey::SurveyModel;
pub use update::UpdateModel;
