//! Daily activity schedules.
//!
//! A [`DaySchedule`] assigns one [`Activity`] to each 10-minute bin of a
//! day, generated per user per day from the persona's occupation: commuters
//! ride trains into downtown in the 7–9 am peak and return in the evening,
//! housewives run late-morning errands, students keep school hours, and
//! everyone's evening stretches towards the 11 pm–1 am WiFi peak the paper
//! observes. Sleep that starts after midnight carries over into the next
//! day's early bins so post-midnight activity (Fig. 2/6) survives.

use crate::persona::Persona;
use mobitrace_geo::{GeoPoint, PoiSet};
use mobitrace_model::{Occupation, Weekday, BINS_PER_DAY, BIN_MINUTES};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What a user is doing in one 10-minute bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activity {
    /// Asleep at home (phone idle, background traffic only).
    Asleep,
    /// Awake at home.
    AtHome,
    /// On the commute; `progress` ∈ [0, 1] along the path,
    /// `to_work == false` on the way home.
    Commute {
        /// Fraction of the path travelled.
        progress: f64,
        /// Direction.
        to_work: bool,
    },
    /// At the workplace/school.
    AtWork,
    /// Out in a public space (lunch, errand, leisure) at a specific spot.
    Out {
        /// Where.
        spot: GeoPoint,
    },
}

impl Activity {
    /// Relative phone-usage weight of the activity (commuters on Tokyo
    /// trains are famously heads-down).
    pub fn usage_weight(self) -> f64 {
        match self {
            Activity::Asleep => 0.03,
            Activity::AtHome => 1.0,
            Activity::Commute { .. } => 1.5,
            Activity::AtWork => 0.45,
            Activity::Out { .. } => 1.1,
        }
    }
}

/// One day of activities, one entry per 10-minute bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaySchedule {
    /// Activities, `BINS_PER_DAY` entries.
    pub slots: Vec<Activity>,
    /// Minutes past the *following* midnight the user stays up (carried
    /// into the next day's schedule as awake-at-home time).
    pub carryover_min: u32,
}

impl DaySchedule {
    /// Activity of a bin.
    pub fn at_bin(&self, bin: u32) -> Activity {
        self.slots[bin as usize % self.slots.len()]
    }

    /// Generate a day.
    ///
    /// `carryover_min` is the previous day's late-night overflow; `pois`
    /// supplies leisure destinations (stations, shopping streets).
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        persona: &Persona,
        weekday: Weekday,
        carryover_min: u32,
        pois: &PoiSet,
    ) -> DaySchedule {
        let mut slots = vec![Activity::Asleep; BINS_PER_DAY as usize];
        let workday = !weekday.is_weekend() && persona.occupation.commutes();

        // Wake and sleep anchors (minutes of day).
        let (wake, sleep_start) = if workday {
            (
                jitter(rng, 390.0, 30.0, 300, 540),    // ~6:30
                jitter(rng, 1440.0, 50.0, 1320, 1560), // ~24:00, may cross midnight
            )
        } else {
            (
                jitter(rng, 510.0, 45.0, 360, 660), // ~8:30
                jitter(rng, 1450.0, 55.0, 1320, 1580),
            )
        };

        // Late-night carryover from yesterday: awake at home after midnight.
        fill(&mut slots, 0, carryover_min, Activity::AtHome);
        // Awake at home from wake onwards (later segments overwrite).
        fill(&mut slots, wake, 1440, Activity::AtHome);
        let carryover_min = sleep_start.saturating_sub(1440).min(150);
        if sleep_start < 1440 {
            fill(&mut slots, sleep_start, 1440, Activity::Asleep);
        }

        if workday {
            let commute_min =
                persona.commute.as_ref().map(|c| c.minutes).unwrap_or(30).clamp(10, 120);
            let leave = wake + jitter(rng, 70.0, 20.0, 30, 150);
            let arrive = leave + commute_min;
            // Work end varies by occupation; engineers/office stay later.
            let work_end_mean = match persona.occupation {
                Occupation::Engineer | Occupation::OfficeWorker => 1110.0, // 18:30
                Occupation::PartTimer => 960.0,                            // 16:00
                Occupation::Student => 970.0,
                _ => 1080.0,
            };
            let work_end = jitter(rng, work_end_mean, 50.0, arrive + 120, 1380);
            fill_commute(&mut slots, leave, arrive, true);
            fill(&mut slots, arrive, work_end, Activity::AtWork);
            // Lunch out with 50% probability — half the time at the
            // station/shopping POI near the office, where public WiFi is.
            if rng.gen_bool(0.5) {
                if let Some(office) = persona.office {
                    let spot = if rng.gen_bool(0.35) {
                        pois.nearest(office)
                    } else {
                        near(rng, office, 0.4)
                    };
                    fill(&mut slots, 720, 770, Activity::Out { spot });
                }
            }
            let back_home = work_end + commute_min;
            fill_commute(&mut slots, work_end, back_home, false);
            // Evening outing (drinks, gym, shopping) on 25% of workdays.
            if rng.gen_bool(0.25) {
                let spot = if rng.gen_bool(0.6) {
                    pois.sample_point(rng)
                } else {
                    near(rng, persona.home, 1.5)
                };
                let start = back_home.max(1140);
                let end = (start + jitter(rng, 100.0, 30.0, 40, 180)).min(1420);
                fill(&mut slots, start, end, Activity::Out { spot });
            }
            // Re-assert sleep after all segments.
            if sleep_start < 1440 {
                fill(&mut slots, sleep_start, 1440, Activity::Asleep);
            }
        } else {
            // Non-workday: housewives errand late morning; everyone may
            // head out for leisure in the afternoon.
            if persona.occupation == Occupation::Housewife || rng.gen_bool(0.35) {
                let spot = near(rng, persona.home, 2.0);
                let start = jitter(rng, 630.0, 40.0, 540, 720);
                fill(&mut slots, start, start + 80, Activity::Out { spot });
            }
            if rng.gen_bool(if weekday.is_weekend() { 0.55 } else { 0.25 }) {
                let spot = if rng.gen_bool(0.55) {
                    pois.sample_point(rng)
                } else {
                    near(rng, persona.home, 3.0)
                };
                let start = jitter(rng, 840.0, 80.0, 720, 1100);
                let end = start + jitter(rng, 150.0, 50.0, 60, 280);
                fill(&mut slots, start, end.min(1420), Activity::Out { spot });
            }
            if sleep_start < 1440 {
                fill(&mut slots, sleep_start, 1440, Activity::Asleep);
            }
        }

        DaySchedule { slots, carryover_min }
    }
}

/// Clamp-jittered Gaussian in minutes.
fn jitter<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64, lo: u32, hi: u32) -> u32 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + sigma * z).clamp(lo as f64, hi as f64) as u32
}

/// Random spot within `radius_km` of a centre.
fn near<R: Rng + ?Sized>(rng: &mut R, centre: GeoPoint, radius_km: f64) -> GeoPoint {
    let r = radius_km * rng.gen_range(0.0f64..1.0).sqrt();
    let theta = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
    centre.offset_km(r * theta.cos(), r * theta.sin())
}

fn fill(slots: &mut [Activity], from_min: u32, to_min: u32, act: Activity) {
    let len = slots.len();
    let from = ((from_min / BIN_MINUTES) as usize).min(len);
    let to = (to_min.div_ceil(BIN_MINUTES) as usize).min(len);
    for s in &mut slots[from.min(to)..to] {
        *s = act;
    }
}

fn fill_commute(slots: &mut [Activity], from_min: u32, to_min: u32, to_work: bool) {
    if to_min <= from_min {
        return;
    }
    let len = slots.len();
    let from = ((from_min / BIN_MINUTES) as usize).min(len);
    let to = (to_min.div_ceil(BIN_MINUTES) as usize).min(len);
    let n = to.saturating_sub(from).max(1);
    for (k, s) in slots[from.min(to)..to].iter_mut().enumerate() {
        let progress = (k as f64 + 0.5) / n as f64;
        *s = Activity::Commute { progress, to_work };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BehaviorParams;
    use mobitrace_geo::{DensitySurface, Grid};
    use mobitrace_model::Year;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_persona(seed: u64, year: Year) -> Persona {
        let params = BehaviorParams::for_year(year);
        let grid = Grid::greater_tokyo();
        let res = DensitySurface::residential();
        let off = DensitySurface::office();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Draw until we get a commuting office worker for workday tests.
        loop {
            let p = Persona::sample(&mut rng, &params, 0, &grid, &res, &off);
            if p.occupation == Occupation::OfficeWorker {
                return p;
            }
        }
    }

    fn public() -> PoiSet {
        use rand::SeedableRng;
        PoiSet::generate(80, &mut rand_chacha::ChaCha8Rng::seed_from_u64(999))
    }

    #[test]
    fn workday_contains_work_and_commute() {
        let p = sample_persona(1, Year::Y2015);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let s = DaySchedule::generate(&mut rng, &p, Weekday::Tue, 0, &public());
        assert_eq!(s.slots.len(), BINS_PER_DAY as usize);
        let works = s.slots.iter().filter(|a| matches!(a, Activity::AtWork)).count();
        let commutes = s.slots.iter().filter(|a| matches!(a, Activity::Commute { .. })).count();
        assert!(works >= 30, "work bins {works}"); // ≥ 5 hours
        assert!(commutes >= 2, "commute bins {commutes}");
        // Morning commute heads to work; evening heads home.
        let first = s
            .slots
            .iter()
            .find_map(|a| match a {
                Activity::Commute { to_work, .. } => Some(*to_work),
                _ => None,
            })
            .unwrap();
        assert!(first);
    }

    #[test]
    fn weekend_has_no_work() {
        let p = sample_persona(3, Year::Y2013);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s = DaySchedule::generate(&mut rng, &p, Weekday::Sun, 0, &public());
        assert!(!s.slots.iter().any(|a| matches!(a, Activity::AtWork)));
        assert!(!s.slots.iter().any(|a| matches!(a, Activity::Commute { .. })));
    }

    #[test]
    fn night_bins_are_asleep() {
        let p = sample_persona(5, Year::Y2014);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let s = DaySchedule::generate(&mut rng, &p, Weekday::Wed, 0, &public());
        // 3:00–5:00 should be asleep for practically everyone.
        for bin in 18..30 {
            assert_eq!(s.at_bin(bin), Activity::Asleep, "bin {bin}");
        }
    }

    #[test]
    fn carryover_keeps_user_up_past_midnight() {
        let p = sample_persona(7, Year::Y2015);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let s = DaySchedule::generate(&mut rng, &p, Weekday::Fri, 60, &public());
        // First 60 minutes = 6 bins awake at home.
        for bin in 0..6 {
            assert_eq!(s.at_bin(bin), Activity::AtHome, "bin {bin}");
        }
    }

    #[test]
    fn some_evenings_run_past_midnight() {
        let p = sample_persona(9, Year::Y2015);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut carried = 0;
        for day in 0..40 {
            let wd = Weekday::from_index(day % 7);
            let s = DaySchedule::generate(&mut rng, &p, wd, 0, &public());
            if s.carryover_min > 0 {
                carried += 1;
            }
        }
        assert!(carried > 5, "only {carried}/40 late nights");
    }

    #[test]
    fn commute_progress_monotone() {
        let p = sample_persona(11, Year::Y2015);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let s = DaySchedule::generate(&mut rng, &p, Weekday::Mon, 0, &public());
        let mut last = -1.0;
        for a in &s.slots {
            if let Activity::Commute { progress, to_work: true } = a {
                assert!(*progress > last, "morning progress not monotone");
                last = *progress;
            }
        }
        assert!(last > 0.0);
    }

    #[test]
    fn usage_weights_rank_sensibly() {
        assert!(Activity::Asleep.usage_weight() < Activity::AtWork.usage_weight());
        assert!(
            Activity::AtWork.usage_weight()
                < Activity::Commute { progress: 0.5, to_work: true }.usage_weight()
        );
    }
}
