//! Traffic demand.
//!
//! Each user draws a daily download *demand* from a log-normal whose median
//! tracks Table 3 and whose tail produces the paper's heavy hitters (top
//! user ≈ 11 GB/day). The day's demand is spread across bins proportionally
//! to activity usage weights × a time-of-day curve, with exponential
//! burstiness per bin and a small always-on background (push, mail polls).

use crate::params::BehaviorParams;
use crate::persona::{lognormal, Persona};
use crate::schedule::DaySchedule;
use mobitrace_model::ByteCount;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Time-of-day appetite multiplier (hour 0–23): morning commute, lunch and
/// the 21:00–24:00 prime time are the peaks the paper sees in Fig. 2.
pub fn tod_curve(hour: u32) -> f64 {
    match hour % 24 {
        0 => 1.0,
        1 => 0.6,
        2..=4 => 0.3,
        5 => 0.4,
        6 => 0.7,
        7 | 8 => 1.25,
        9..=11 => 0.85,
        12 => 1.2,
        13..=16 => 0.8,
        17 => 0.95,
        18 => 1.05,
        19 | 20 => 1.25,
        21 | 22 => 1.45,
        _ => 1.3, // 23
    }
}

/// Demand generator for one campaign year.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandModel {
    params: BehaviorParams,
}

impl DemandModel {
    /// Build from year parameters.
    pub fn new(params: BehaviorParams) -> DemandModel {
        DemandModel { params }
    }

    /// Year parameters.
    pub fn params(&self) -> &BehaviorParams {
        &self.params
    }

    /// Draw a user's total download demand for one day (bytes).
    pub fn daily_demand<R: Rng + ?Sized>(&self, rng: &mut R, persona: &Persona) -> ByteCount {
        let day_factor = lognormal(rng, 0.0, self.params.demand_sigma_day);
        let mb = self.params.demand_median_mb * persona.demand_scale * day_factor;
        ByteCount::mb_f64(mb)
    }

    /// Relative demand weight of each bin of a day, given the schedule.
    pub fn bin_weights(&self, schedule: &DaySchedule) -> Vec<f64> {
        schedule
            .slots
            .iter()
            .enumerate()
            .map(|(bin, act)| {
                let hour = bin as u32 / 6;
                act.usage_weight() * tod_curve(hour)
            })
            .collect()
    }

    /// Realised foreground download demand in one bin (bytes):
    /// `daily × w_bin/Σw × Exp(1)`-style burstiness.
    pub fn bin_demand<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        daily: ByteCount,
        weights: &[f64],
        bin: u32,
    ) -> u64 {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return 0;
        }
        let share = weights[bin as usize] / total;
        // Burstiness: most bins quiet, some bins several × the mean.
        let u: f64 = rng.gen_range(1e-9f64..1.0);
        let burst = (-u.ln()).clamp(0.0, 8.0);
        (daily.as_bytes() as f64 * share * burst) as u64
    }

    /// Always-on background traffic per bin (push notifications, mail
    /// polls, keep-alives): a few to tens of kB.
    pub fn background_rx<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.gen_range(3_000..40_000)
    }

    /// WiFi demand multiplier (appetite unlocked on a fast free network).
    pub fn wifi_boost(&self) -> f64 {
        self.params.wifi_boost
    }

    /// Cellular demand multiplier (users defer heavy use off cellular).
    pub fn cell_appetite(&self) -> f64 {
        self.params.cell_appetite
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persona::WifiAttitude;
    use mobitrace_geo::{DensitySurface, Grid};
    use mobitrace_model::{Weekday, Year, BINS_PER_DAY};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn population(year: Year, n: usize, seed: u64) -> Vec<Persona> {
        let params = BehaviorParams::for_year(year);
        let grid = Grid::greater_tokyo();
        let res = DensitySurface::residential();
        let off = DensitySurface::office();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|i| Persona::sample(&mut rng, &params, i as u32, &grid, &res, &off)).collect()
    }

    #[test]
    fn daily_demand_median_tracks_params() {
        let model = DemandModel::new(BehaviorParams::for_year(Year::Y2015));
        let pop = population(Year::Y2015, 400, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut samples: Vec<f64> = Vec::new();
        for p in &pop {
            for _ in 0..15 {
                samples.push(model.daily_demand(&mut rng, p).as_mb());
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let want = BehaviorParams::for_year(Year::Y2015).demand_median_mb;
        assert!(
            (median - want).abs() < want * 0.2,
            "median daily demand {median} MB, want ≈{want}"
        );
        // Heavy tail: somebody demands gigabytes.
        assert!(*samples.last().unwrap() > 2_000.0, "max {} MB", samples.last().unwrap());
    }

    #[test]
    fn demand_grows_across_years() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut medians = Vec::new();
        for y in Year::ALL {
            let model = DemandModel::new(BehaviorParams::for_year(y));
            let pop = population(y, 300, 4);
            let mut s: Vec<f64> = pop
                .iter()
                .flat_map(|p| {
                    (0..10).map(|_| model.daily_demand(&mut rng, p).as_mb()).collect::<Vec<_>>()
                })
                .collect();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            medians.push(s[s.len() / 2]);
        }
        // 2014 vs 2015 raw demand medians are close (the realized-volume
        // growth in 2015 also comes from WiFi availability); only require
        // clear growth from 2013 and no decline after.
        assert!(medians[0] < medians[1], "{medians:?}");
        assert!(medians[2] > medians[1] * 0.9, "{medians:?}");
    }

    #[test]
    fn bin_weights_shape() {
        let model = DemandModel::new(BehaviorParams::for_year(Year::Y2014));
        let pop = population(Year::Y2014, 50, 5);
        let p = pop
            .iter()
            .find(|p| p.occupation.commutes() && p.attitude == WifiAttitude::AlwaysOn)
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let pois = mobitrace_geo::PoiSet::generate(40, &mut rng);
        let sched = DaySchedule::generate(&mut rng, p, Weekday::Wed, 0, &pois);
        let w = model.bin_weights(&sched);
        assert_eq!(w.len(), BINS_PER_DAY as usize);
        // Deep night (3:30, bin 21) far below evening (21:30, bin 129).
        assert!(w[21] < w[129] / 5.0, "night {} vs evening {}", w[21], w[129]);
    }

    #[test]
    fn bin_demand_sums_near_daily() {
        let model = DemandModel::new(BehaviorParams::for_year(Year::Y2015));
        let pop = population(Year::Y2015, 30, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let pois = mobitrace_geo::PoiSet::generate(40, &mut rng);
        let sched = DaySchedule::generate(&mut rng, &pop[0], Weekday::Thu, 0, &pois);
        let w = model.bin_weights(&sched);
        let daily = ByteCount::mb(100);
        // Average over many days to beat the per-bin burst noise.
        let mut total = 0u64;
        let days = 40;
        for _ in 0..days {
            for bin in 0..BINS_PER_DAY {
                total += model.bin_demand(&mut rng, daily, &w, bin);
            }
        }
        let avg_mb = total as f64 / days as f64 / 1e6;
        assert!((avg_mb - 100.0).abs() < 15.0, "avg realised {avg_mb} MB/day");
    }

    #[test]
    fn background_is_small_but_nonzero() {
        let model = DemandModel::new(BehaviorParams::for_year(Year::Y2013));
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            let b = model.background_rx(&mut rng);
            assert!((3_000..40_000).contains(&b));
        }
    }

    #[test]
    fn tod_curve_peaks_at_prime_time() {
        let peak = tod_curve(21);
        for h in [3, 10, 14] {
            assert!(tod_curve(h) < peak);
        }
        assert_eq!(tod_curve(24), tod_curve(0));
    }
}
