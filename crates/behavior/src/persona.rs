//! Per-user personas.

use crate::demographics::sample_occupation;
use crate::params::BehaviorParams;
use mobitrace_geo::{CommutePath, DensitySurface, GeoPoint, Grid};
use mobitrace_model::{AppCategory, Occupation, Os};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A user's habitual WiFi interface management.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WifiAttitude {
    /// Interface permanently off (or never configured): the
    /// cellular-intensive cluster of Fig. 5.
    AlwaysOff,
    /// Turns WiFi off when leaving home and back on at home in the
    /// evening — the business-hours WiFi-off bump of Fig. 9.
    TogglesOff,
    /// Leaves the interface on; associates to whatever known network is in
    /// range.
    AlwaysOn,
}

/// Everything time-invariant about one user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Persona {
    /// Population index (== DeviceId).
    pub index: u32,
    /// Device OS.
    pub os: Os,
    /// Survey occupation.
    pub occupation: Occupation,
    /// Home location (exact; the dataset only sees the 5 km cell).
    pub home: GeoPoint,
    /// Workplace/school location for commuters.
    pub office: Option<GeoPoint>,
    /// Precomputed commute path.
    pub commute: Option<CommutePath>,
    /// Household owns a home AP.
    pub owns_home_ap: bool,
    /// Workplace deploys BYOD WiFi this user may join.
    pub office_byod: bool,
    /// WiFi interface habit.
    pub attitude: WifiAttitude,
    /// Carrier/public WiFi auto-join configured.
    pub public_wifi_configured: bool,
    /// Avoids cellular data (WiFi-intensive user).
    pub cellular_averse: bool,
    /// User-level demand multiplier (log-normal, median 1).
    pub demand_scale: f64,
    /// Per-category appetite multipliers (log-normal, median 1) that tilt
    /// the year/context app mixes per user.
    pub app_affinity: Vec<f64>,
    /// Android "WiFi off during sleep" policy active: the device parks
    /// the interface (enabled, unassociated) while the user sleeps, which
    /// produces the paper's post-2am dip in the WiFi-user ratio (Fig. 6b).
    pub sleep_wifi_off: bool,
    /// Worries about public-WiFi security (survey reason; rises 2014→15).
    pub security_conscious: bool,
    /// Worries about battery drain (survey reason; falls over the years).
    pub battery_concern: bool,
}

impl Persona {
    /// Sample a persona for user `index` under the year's parameters.
    pub fn sample<R: Rng + ?Sized>(
        rng: &mut R,
        params: &BehaviorParams,
        index: u32,
        grid: &Grid,
        residential: &DensitySurface,
        office_surface: &DensitySurface,
    ) -> Persona {
        let os = if rng.gen_range(0.0..1.0) < params.android_share { Os::Android } else { Os::Ios };
        let occupation = sample_occupation(rng, params.year);
        let home = residential.sample_point(rng);
        let (office, commute) = if occupation.commutes() {
            let office = office_surface.sample_point(rng);
            let commute = CommutePath::between(grid, home, office);
            (Some(office), Some(commute))
        } else {
            (None, None)
        };

        let (p_off, p_toggle, _) = params.attitude_mix(os);
        let x: f64 = rng.gen_range(0.0..1.0);
        let attitude = if x < p_off {
            WifiAttitude::AlwaysOff
        } else if x < p_off + p_toggle {
            WifiAttitude::TogglesOff
        } else {
            WifiAttitude::AlwaysOn
        };

        // Home-AP ownership correlates with WiFi attitude: nearly every
        // WiFi-using household owns an AP, always-off users rarely do.
        // The combination reproduces the paper's inferred-home-AP shares
        // (66/73/79%) once always-off devices — whose APs can never be
        // inferred from associations — are factored in.
        let own_p = match attitude {
            WifiAttitude::AlwaysOff => params.owns_home_ap_off,
            _ => params.owns_home_ap_on,
        };
        let owns_home_ap = rng.gen_range(0.0..1.0) < own_p;
        let office_byod = occupation.commutes()
            && occupation != Occupation::Student
            && rng.gen_range(0.0..1.0) < params.office_byod;
        // Cellular-averse users keep WiFi on by definition.
        let cellular_averse = attitude == WifiAttitude::AlwaysOn
            && rng.gen_range(0.0..1.0) < params.cellular_averse / 0.6;
        let public_wifi_configured = attitude != WifiAttitude::AlwaysOff
            && (rng.gen_range(0.0..1.0) < params.public_wifi_configured || cellular_averse);

        // Casual users who never touch WiFi also use their phones less;
        // without this, always-off heavy hitters inflate the cellular
        // mean far beyond Table 3's.
        let attitude_damp = if attitude == WifiAttitude::AlwaysOff { 0.6 } else { 1.0 };
        let demand_scale = lognormal(rng, 0.0, params.demand_sigma_user) * attitude_damp;
        let app_affinity = (0..AppCategory::ALL.len()).map(|_| lognormal(rng, 0.0, 0.6)).collect();

        let security_year = match params.year {
            mobitrace_model::Year::Y2013 => 0.15,
            mobitrace_model::Year::Y2014 => 0.20,
            mobitrace_model::Year::Y2015 => 0.35,
        };
        let battery_year = match params.year {
            mobitrace_model::Year::Y2013 => 0.25,
            mobitrace_model::Year::Y2014 => 0.18,
            mobitrace_model::Year::Y2015 => 0.13,
        };
        // Older Android builds default to dropping WiFi on screen-off.
        // Kept a minority: a device that parks WiFi all night can never
        // satisfy the 70%-of-night home rule, and the paper's inference
        // does reach ~66–79% of users.
        let sleep_off_year = match params.year {
            mobitrace_model::Year::Y2013 => 0.12,
            mobitrace_model::Year::Y2014 => 0.08,
            mobitrace_model::Year::Y2015 => 0.05,
        };
        let sleep_wifi_off = os == Os::Android && rng.gen_range(0.0..1.0) < sleep_off_year;

        Persona {
            index,
            os,
            occupation,
            home,
            office,
            commute,
            owns_home_ap,
            office_byod,
            attitude,
            public_wifi_configured,
            cellular_averse,
            demand_scale,
            app_affinity,
            sleep_wifi_off,
            security_conscious: rng.gen_range(0.0..1.0) < security_year,
            battery_concern: rng.gen_range(0.0..1.0) < battery_year,
        }
    }

    /// Appetite multiplier for a category.
    pub fn affinity(&self, c: AppCategory) -> f64 {
        self.app_affinity[c.index()]
    }
}

/// Log-normal sample with the given log-mean and log-σ.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobitrace_model::Year;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_population(year: Year, n: usize, seed: u64) -> Vec<Persona> {
        let params = BehaviorParams::for_year(year);
        let grid = Grid::greater_tokyo();
        let res = DensitySurface::residential();
        let off = DensitySurface::office();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|i| Persona::sample(&mut rng, &params, i as u32, &grid, &res, &off)).collect()
    }

    #[test]
    fn commuters_have_offices() {
        for p in sample_population(Year::Y2015, 300, 1) {
            assert_eq!(p.office.is_some(), p.occupation.commutes(), "{:?}", p.occupation);
            assert_eq!(p.commute.is_some(), p.occupation.commutes());
            if let Some(c) = &p.commute {
                assert!(c.minutes >= 5);
            }
        }
    }

    #[test]
    fn attitude_shares_match_params() {
        let pop = sample_population(Year::Y2013, 4000, 2);
        let android: Vec<_> = pop.iter().filter(|p| p.os == Os::Android).collect();
        let off = android.iter().filter(|p| p.attitude == WifiAttitude::AlwaysOff).count() as f64
            / android.len() as f64;
        assert!((off - 0.38).abs() < 0.04, "Android always-off share {off}");
    }

    #[test]
    fn home_ap_ownership_conditional() {
        let pop = sample_population(Year::Y2015, 4000, 3);
        let on: Vec<_> = pop.iter().filter(|p| p.attitude != WifiAttitude::AlwaysOff).collect();
        let own_on = on.iter().filter(|p| p.owns_home_ap).count() as f64 / on.len() as f64;
        assert!((own_on - 0.97).abs() < 0.02, "on-user ownership {own_on}");
        let off: Vec<_> = pop.iter().filter(|p| p.attitude == WifiAttitude::AlwaysOff).collect();
        let own_off = off.iter().filter(|p| p.owns_home_ap).count() as f64 / off.len() as f64;
        assert!((own_off - 0.40).abs() < 0.06, "off-user ownership {own_off}");
    }

    #[test]
    fn cellular_averse_users_keep_wifi_on() {
        for p in sample_population(Year::Y2014, 3000, 4) {
            if p.cellular_averse {
                assert_eq!(p.attitude, WifiAttitude::AlwaysOn);
                assert!(p.public_wifi_configured);
            }
        }
    }

    #[test]
    fn demand_scale_median_near_one() {
        let pop = sample_population(Year::Y2015, 3001, 5);
        let mut scales: Vec<f64> = pop.iter().map(|p| p.demand_scale).collect();
        scales.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = scales[scales.len() / 2];
        assert!((0.8..1.25).contains(&median), "median {median}");
        // Heavy tail exists.
        assert!(scales.last().unwrap() > &5.0);
    }

    #[test]
    fn lognormal_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| lognormal(&mut rng, 0.0, 1.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        // E[lognormal(0,1)] = e^0.5 ≈ 1.6487.
        assert!((mean - 1.6487).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn students_never_byod() {
        for p in sample_population(Year::Y2013, 2000, 7) {
            if p.occupation == Occupation::Student {
                assert!(!p.office_byod);
            }
        }
    }
}
