//! Application-category mixes per year and usage context.
//!
//! The paper's Tables 6/7 break application traffic down by network type ×
//! location (cellular at home, cellular elsewhere, WiFi at home, WiFi in
//! public). Users pick different apps in different contexts — video and
//! large downloads migrate to free, fast WiFi; online-storage sync
//! (productivity) is WiFi-gated by the apps themselves. We encode each
//! year×context RX mix directly (calibrated to Table 6), tilt it by
//! per-user affinities, and derive TX from per-category upload/download
//! ratios (productivity and photo are upload-heavy, video is almost pure
//! download), which reproduces the Table 7 rankings.

use crate::persona::Persona;
use mobitrace_model::{AppBin, AppCategory, Year};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Usage context of a traffic bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppContext {
    /// Cellular interface while at home (mostly users without home APs).
    CellHome,
    /// Cellular interface away from home.
    CellOther,
    /// WiFi at home.
    WifiHome,
    /// WiFi on a public provider network.
    WifiPublic,
    /// WiFi at the office or a shop AP.
    WifiOther,
}

impl AppContext {
    /// All contexts.
    pub const ALL: [AppContext; 5] = [
        AppContext::CellHome,
        AppContext::CellOther,
        AppContext::WifiHome,
        AppContext::WifiPublic,
        AppContext::WifiOther,
    ];
}

/// Upload bytes generated per download byte for each category.
pub fn tx_ratio(c: AppCategory) -> f64 {
    use AppCategory::*;
    match c {
        Browser => 0.12,
        Social => 0.55,
        Video => 0.08,
        Communication => 0.50,
        News => 0.05,
        Game => 0.25,
        Music => 0.03,
        Travel => 0.15,
        Shopping => 0.12,
        Downloading => 0.01,
        Entertainment => 0.15,
        Tools => 0.20,
        Productivity => 1.80, // online-storage sync uploads
        Lifestyle => 0.12,
        Health => 0.30,
        Business => 0.60,
        Books => 0.03,
        Education => 0.05,
        Finance => 0.30,
        Maps => 0.15,
        Photography => 1.20, // photo backup
        Weather => 0.05,
        Personalization => 0.05,
        Sports => 0.05,
        Medical => 0.10,
        Other => 0.20,
    }
}

/// RX category weights for one year and context. Head entries are
/// transcribed from Table 6; the remaining mass is spread over a long tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppMix {
    /// Which year this mix describes.
    pub year: Year,
    weights: [[f64; 26]; 5],
}

impl AppMix {
    /// The calibrated mix for a campaign year.
    pub fn for_year(year: Year) -> AppMix {
        use AppCategory::*;
        let mut weights = [[0.0; 26]; 5];
        // (context, head categories with Table 6 RX percentages)
        let heads: [(AppContext, &[(AppCategory, f64)]); 5] = match year {
            Year::Y2013 => [
                (
                    AppContext::CellHome,
                    &[
                        (Browser, 38.0),
                        (Social, 7.3),
                        (Communication, 6.2),
                        (Video, 5.7),
                        (News, 2.0),
                    ][..],
                ),
                (
                    AppContext::CellOther,
                    &[
                        (Browser, 38.5),
                        (Communication, 7.7),
                        (Social, 7.6),
                        (News, 2.6),
                        (Video, 2.1),
                    ][..],
                ),
                (
                    AppContext::WifiHome,
                    &[
                        (Browser, 28.0),
                        (Social, 6.8),
                        (Communication, 4.3),
                        (Video, 4.0),
                        (News, 3.5),
                        (Productivity, 2.2),
                    ][..],
                ),
                (
                    AppContext::WifiPublic,
                    &[
                        (Browser, 44.1),
                        (Social, 4.0),
                        (Lifestyle, 3.3),
                        (Communication, 3.0),
                        (News, 2.9),
                    ][..],
                ),
                (
                    AppContext::WifiOther,
                    &[
                        (Browser, 35.0),
                        (Communication, 7.0),
                        (Social, 6.0),
                        (Business, 3.0),
                        (News, 3.0),
                    ][..],
                ),
            ],
            Year::Y2014 => [
                (
                    AppContext::CellHome,
                    &[
                        (Browser, 36.4),
                        (Video, 7.4),
                        (Communication, 7.4),
                        (Social, 6.3),
                        (News, 6.2),
                    ][..],
                ),
                (
                    AppContext::CellOther,
                    &[
                        (Browser, 31.4),
                        (Communication, 9.9),
                        (Video, 8.0),
                        (News, 6.6),
                        (Game, 6.3),
                    ][..],
                ),
                (
                    AppContext::WifiHome,
                    &[
                        (Video, 30.4),
                        (Browser, 20.7),
                        (Communication, 6.5),
                        (News, 6.0),
                        (Downloading, 4.7),
                        (Productivity, 4.0),
                    ][..],
                ),
                (
                    AppContext::WifiPublic,
                    &[
                        (Downloading, 22.5),
                        (Browser, 21.9),
                        (Video, 13.8),
                        (Lifestyle, 4.9),
                        (Health, 3.2),
                    ][..],
                ),
                (
                    AppContext::WifiOther,
                    &[
                        (Browser, 30.0),
                        (Communication, 8.0),
                        (Video, 6.0),
                        (Business, 4.0),
                        (Productivity, 4.0),
                    ][..],
                ),
            ],
            Year::Y2015 => [
                (
                    AppContext::CellHome,
                    &[
                        (Browser, 28.3),
                        (Video, 11.0),
                        (Communication, 9.5),
                        (Social, 7.9),
                        (News, 5.8),
                    ][..],
                ),
                (
                    AppContext::CellOther,
                    &[
                        (Browser, 28.3),
                        (Communication, 12.7),
                        (Video, 12.0),
                        (News, 7.6),
                        (Social, 6.9),
                    ][..],
                ),
                (
                    AppContext::WifiHome,
                    &[
                        (Video, 25.4),
                        (Browser, 20.0),
                        (Downloading, 11.1),
                        (Communication, 7.4),
                        (Social, 4.7),
                        (Productivity, 3.5),
                    ][..],
                ),
                (
                    AppContext::WifiPublic,
                    &[
                        (Browser, 24.0),
                        (Video, 19.6),
                        (Downloading, 9.9),
                        (Lifestyle, 4.1),
                        (Communication, 3.6),
                    ][..],
                ),
                (
                    AppContext::WifiOther,
                    &[
                        (Browser, 28.0),
                        (Communication, 9.0),
                        (Video, 8.0),
                        (Productivity, 5.0),
                        (Business, 4.0),
                    ][..],
                ),
            ],
        };
        for (ctx, head) in heads {
            let w = &mut weights[ctx as usize];
            let mut used = 0.0;
            for &(cat, pct) in head {
                w[cat.index()] = pct;
                used += pct;
            }
            // Spread the remaining mass across all untouched categories.
            let rest = (100.0 - used).max(0.0);
            let untouched = 26 - head.len();
            for (i, slot) in w.iter_mut().enumerate() {
                if *slot == 0.0 {
                    // Mild structure in the tail: social/game/music heavier
                    // than medical/personalization.
                    let tail_bias = match AppCategory::ALL[i] {
                        Social | Game | Music | Shopping => 2.0,
                        Tools | Entertainment | Maps | Photography => 1.5,
                        _ => 0.8,
                    };
                    *slot = rest * tail_bias / (untouched as f64 * 1.2);
                }
            }
            // Normalise to 1.
            let total: f64 = w.iter().sum();
            for slot in w.iter_mut() {
                *slot /= total;
            }
        }
        AppMix { year, weights }
    }

    /// Normalised RX weights for a context.
    pub fn weights(&self, ctx: AppContext) -> &[f64; 26] {
        &self.weights[ctx as usize]
    }

    /// Split a bin's download volume across categories for one user.
    ///
    /// Draws 1–4 active categories from the context mix tilted by the
    /// user's affinities, allocates the volume across them, and derives
    /// uploads from the per-category [`tx_ratio`]. Returns the per-category
    /// bins plus the total TX volume.
    pub fn split<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        ctx: AppContext,
        persona: &Persona,
        rx_bytes: u64,
    ) -> (Vec<AppBin>, u64) {
        if rx_bytes == 0 {
            return (Vec::new(), 0);
        }
        let w = self.weights(ctx);
        // Tilted weights.
        let tilted: Vec<f64> = (0..26).map(|i| w[i] * persona.app_affinity[i]).collect();
        let total: f64 = tilted.iter().sum();
        let n_active = 1 + rng.gen_range(0..4).min(rng.gen_range(0..4));
        let mut picks: Vec<usize> = Vec::with_capacity(n_active);
        for _ in 0..n_active {
            let mut x = rng.gen_range(0.0..total);
            for (i, &tw) in tilted.iter().enumerate() {
                if x < tw {
                    if !picks.contains(&i) {
                        picks.push(i);
                    }
                    break;
                }
                x -= tw;
            }
        }
        if picks.is_empty() {
            picks.push(0);
        }
        // Allocate volume proportionally to the tilted weights of the picks.
        let pick_total: f64 = picks.iter().map(|&i| tilted[i]).sum();
        let mut bins = Vec::with_capacity(picks.len());
        let mut tx_total = 0u64;
        let mut assigned = 0u64;
        for (k, &i) in picks.iter().enumerate() {
            let share = if k + 1 == picks.len() {
                rx_bytes - assigned
            } else {
                ((tilted[i] / pick_total) * rx_bytes as f64) as u64
            };
            assigned += share;
            let cat = AppCategory::ALL[i];
            let tx = (share as f64 * tx_ratio(cat)) as u64;
            tx_total += tx;
            if share > 0 || tx > 0 {
                bins.push(AppBin { category: cat, rx_bytes: share, tx_bytes: tx });
            }
        }
        (bins, tx_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BehaviorParams;
    use mobitrace_geo::{DensitySurface, Grid};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn test_persona(seed: u64) -> Persona {
        let params = BehaviorParams::for_year(Year::Y2015);
        let grid = Grid::greater_tokyo();
        let res = DensitySurface::residential();
        let off = DensitySurface::office();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Persona::sample(&mut rng, &params, 0, &grid, &res, &off)
    }

    #[test]
    fn weights_normalised() {
        for y in Year::ALL {
            let mix = AppMix::for_year(y);
            for ctx in AppContext::ALL {
                let s: f64 = mix.weights(ctx).iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "{y} {ctx:?}: {s}");
                assert!(mix.weights(ctx).iter().all(|&v| v > 0.0));
            }
        }
    }

    #[test]
    fn table6_heads_preserved() {
        // 2015 WiFi-home: video leads browser; 2013 WiFi-public: browser
        // dominates (44%).
        let m15 = AppMix::for_year(Year::Y2015);
        let wh = m15.weights(AppContext::WifiHome);
        assert!(wh[AppCategory::Video.index()] > wh[AppCategory::Browser.index()]);
        let m13 = AppMix::for_year(Year::Y2013);
        let wp = m13.weights(AppContext::WifiPublic);
        assert!(wp[AppCategory::Browser.index()] > 0.35);
    }

    #[test]
    fn video_migrates_to_wifi_over_years() {
        let video = AppCategory::Video.index();
        let v13 = AppMix::for_year(Year::Y2013).weights(AppContext::WifiHome)[video];
        let v15 = AppMix::for_year(Year::Y2015).weights(AppContext::WifiHome)[video];
        assert!(v15 > v13 * 3.0, "wifi-home video {v13} → {v15}");
    }

    #[test]
    fn split_conserves_rx_volume() {
        let mix = AppMix::for_year(Year::Y2015);
        let p = test_persona(1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for rx in [1u64, 999, 100_000, 50_000_000] {
            let (bins, _) = mix.split(&mut rng, AppContext::WifiHome, &p, rx);
            let total: u64 = bins.iter().map(|b| b.rx_bytes).sum();
            assert_eq!(total, rx, "rx {rx}");
        }
    }

    #[test]
    fn split_zero_is_empty() {
        let mix = AppMix::for_year(Year::Y2013);
        let p = test_persona(3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (bins, tx) = mix.split(&mut rng, AppContext::CellOther, &p, 0);
        assert!(bins.is_empty());
        assert_eq!(tx, 0);
    }

    #[test]
    fn aggregate_tx_rx_ratio_plausible() {
        // Aggregate TX should land near the paper's ~1:5 TX:RX.
        let mix = AppMix::for_year(Year::Y2015);
        let p = test_persona(5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (mut rx_sum, mut tx_sum) = (0u64, 0u64);
        for _ in 0..2000 {
            let (_, tx) = mix.split(&mut rng, AppContext::CellOther, &p, 1_000_000);
            rx_sum += 1_000_000;
            tx_sum += tx;
        }
        let ratio = tx_sum as f64 / rx_sum as f64;
        assert!((0.08..0.45).contains(&ratio), "TX/RX {ratio}");
    }

    #[test]
    fn productivity_dominates_wifi_home_tx() {
        // Table 7 (2014 WiFi-home): productivity is the top TX category.
        let mix = AppMix::for_year(Year::Y2014);
        let w = mix.weights(AppContext::WifiHome);
        let tx_share = |c: AppCategory| w[c.index()] * tx_ratio(c);
        assert!(tx_share(AppCategory::Productivity) > tx_share(AppCategory::Browser));
        assert!(tx_share(AppCategory::Productivity) > tx_share(AppCategory::Video));
    }
}
