//! User demographics (Table 2).
//!
//! Each campaign recruited an independent panel whose occupation mix the
//! paper reports. We sample occupations from exactly those marginals, so
//! the Table 2 reproduction is a direct read-back of the population and
//! downstream schedules inherit realistic commuter shares.

use mobitrace_model::{Occupation, Year};
use rand::Rng;

/// Occupation shares (percent) per campaign year, in `Occupation::ALL`
/// order — transcribed from Table 2 of the paper.
pub fn occupation_shares(year: Year) -> [f64; 10] {
    match year {
        Year::Y2013 => [2.1, 20.0, 16.7, 12.8, 2.4, 6.1, 9.0, 15.0, 9.6, 6.3],
        Year::Y2014 => [3.4, 20.1, 14.7, 13.7, 2.0, 6.7, 10.1, 14.2, 8.3, 6.8],
        Year::Y2015 => [2.4, 23.6, 16.6, 13.2, 2.8, 5.6, 10.6, 13.3, 2.7, 7.1],
    }
}

/// Sample an occupation from the year's panel mix.
pub fn sample_occupation<R: Rng + ?Sized>(rng: &mut R, year: Year) -> Occupation {
    let shares = occupation_shares(year);
    let total: f64 = shares.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (i, &s) in shares.iter().enumerate() {
        if x < s {
            return Occupation::ALL[i];
        }
        x -= s;
    }
    Occupation::Other
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shares_sum_to_about_100() {
        for y in Year::ALL {
            let total: f64 = occupation_shares(y).iter().sum();
            assert!((total - 100.0).abs() < 2.5, "{y}: {total}"); // Table 2 itself sums to ~98-100
        }
    }

    #[test]
    fn sampling_matches_marginals() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 50_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            let occ = sample_occupation(&mut rng, Year::Y2013);
            counts[Occupation::ALL.iter().position(|&o| o == occ).unwrap()] += 1;
        }
        let shares = occupation_shares(Year::Y2013);
        let total: f64 = shares.iter().sum();
        for i in 0..10 {
            let got = counts[i] as f64 / n as f64;
            let want = shares[i] / total;
            assert!((got - want).abs() < 0.01, "{:?}: {got} vs {want}", Occupation::ALL[i]);
        }
    }

    #[test]
    fn student_share_collapses_in_2015() {
        // Table 2: students drop from 9.6% (2013) to 2.7% (2015).
        assert!(occupation_shares(Year::Y2015)[8] < occupation_shares(Year::Y2013)[8] / 2.0);
    }
}
