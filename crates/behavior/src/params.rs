//! Per-year behavioural parameters.
//!
//! Every number here is a calibration knob tied to a measured quantity in
//! the paper; the comment on each field names its target. The calibration
//! tests in `mobitrace-sim` and the EXPERIMENTS harness check the derived
//! statistics, not these raw inputs.

use mobitrace_model::{Os, Year};
use serde::{Deserialize, Serialize};

/// Mixture of WiFi attitudes for one OS population:
/// (always-off, toggles-off-away, always-on). Sums to 1.
pub type AttitudeMix = (f64, f64, f64);

/// Behavioural parameters of one campaign year.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorParams {
    /// Campaign year.
    pub year: Year,
    /// Share of Android devices (Table 1: 948/1755, 887/1676, 835/1616).
    pub android_share: f64,
    /// Probability a WiFi-using (non-always-off) user's household owns a
    /// home AP. High — nearly every user who cares about WiFi has a home
    /// AP — so that the *inferred*-home-AP shares match the paper's
    /// 66% / 73% / 79% after the always-off population is excluded.
    pub owns_home_ap_on: f64,
    /// Same probability for always-off users (they rarely bother).
    pub owns_home_ap_off: f64,
    /// Probability a commuting user's workplace allows BYOD WiFi
    /// (§4.2: office WiFi "still not common"; inferred office APs stable).
    pub office_byod: f64,
    /// Android attitude mix (Fig. 9a/b: WiFi-off share falls 50% → 40%).
    pub attitude_android: AttitudeMix,
    /// iOS attitude mix (Fig. 9c: iOS connects ~30% more than Android).
    pub attitude_ios: AttitudeMix,
    /// Probability an always-on user has carrier/public WiFi auto-join
    /// configured (§4.2: SIM-based auth from 2013 removes manual setup).
    pub public_wifi_configured: f64,
    /// Probability that an always-on home-AP owner actually connects at
    /// home on a given day (habit, not hardware).
    pub home_assoc_daily_p: f64,
    /// Demand multiplier while the user is at home. Well below 1 in 2013 —
    /// at home the PC was still the main screen, so phone WiFi volume
    /// stayed low (Table 3: WiFi median 9.2 MB vs cellular 19.5) — and
    /// approaching 1 as the phone becomes the primary home device.
    pub home_appetite: f64,
    /// Share of users who actively avoid cellular data (WiFi-intensive
    /// cluster of Fig. 5, ~8% in every year).
    pub cellular_averse: f64,
    /// Median of the daily *download demand* distribution (MB). Target:
    /// Table 3 median daily RX (57.9 / 90.3 / 126.5 MB); demand runs a
    /// little above realized volume because link and cap limits bind.
    pub demand_median_mb: f64,
    /// User-level heterogeneity σ of log demand.
    pub demand_sigma_user: f64,
    /// Day-level σ of log demand.
    pub demand_sigma_day: f64,
    /// Demand multiplier while associated to WiFi (drives Table 3's WiFi
    /// growth outpacing cellular and the heavy-hitter WiFi skew).
    pub wifi_boost: f64,
    /// Demand multiplier on cellular (users defer heavy use off cellular;
    /// keeps cellular means near Table 3's).
    pub cell_appetite: f64,
    /// Demand multiplier for LTE devices (newer, faster devices carry
    /// more traffic — the paper's LTE *traffic* share runs ahead of the
    /// LTE *device* share: 32% vs 25% in 2013).
    pub lte_demand_factor: f64,
    /// Typical per-user daily cellular ceiling (MB): beyond it users stop
    /// streaming on mobile (slow, warm, fear of the cap). Keeps the
    /// cellular tail thin enough that only ~0.5–1.4% of users ever cross
    /// the 1 GB/3-day trigger (§3.8), while WiFi days run unbounded.
    pub cell_daily_ceiling_mb: f64,
    /// Probability the user answers the post-campaign survey.
    pub survey_response_rate: f64,
}

impl BehaviorParams {
    /// Canonical parameters per campaign year.
    pub fn for_year(year: Year) -> BehaviorParams {
        match year {
            Year::Y2013 => BehaviorParams {
                year,
                android_share: 948.0 / 1755.0,
                owns_home_ap_on: 0.95,
                owns_home_ap_off: 0.30,
                office_byod: 0.12,
                attitude_android: (0.38, 0.12, 0.50),
                attitude_ios: (0.18, 0.05, 0.77),
                public_wifi_configured: 0.30,
                home_assoc_daily_p: 0.70,
                home_appetite: 0.66,
                cellular_averse: 0.08,
                demand_median_mb: 80.0,
                demand_sigma_user: 0.85,
                demand_sigma_day: 0.70,
                wifi_boost: 1.50,
                cell_appetite: 0.80,
                lte_demand_factor: 1.4,
                cell_daily_ceiling_mb: 170.0,
                survey_response_rate: 0.95,
            },
            Year::Y2014 => BehaviorParams {
                year,
                android_share: 887.0 / 1676.0,
                owns_home_ap_on: 0.96,
                owns_home_ap_off: 0.35,
                office_byod: 0.12,
                attitude_android: (0.34, 0.11, 0.55),
                attitude_ios: (0.14, 0.05, 0.81),
                public_wifi_configured: 0.38,
                home_assoc_daily_p: 0.75,
                home_appetite: 0.78,
                cellular_averse: 0.08,
                demand_median_mb: 105.0,
                demand_sigma_user: 0.85,
                demand_sigma_day: 0.70,
                wifi_boost: 1.40,
                cell_appetite: 0.78,
                lte_demand_factor: 1.3,
                cell_daily_ceiling_mb: 200.0,
                survey_response_rate: 0.95,
            },
            Year::Y2015 => BehaviorParams {
                year,
                android_share: 835.0 / 1616.0,
                owns_home_ap_on: 0.97,
                owns_home_ap_off: 0.40,
                office_byod: 0.12,
                attitude_android: (0.30, 0.10, 0.60),
                attitude_ios: (0.10, 0.05, 0.85),
                public_wifi_configured: 0.48,
                home_assoc_daily_p: 0.85,
                home_appetite: 0.95,
                cellular_averse: 0.08,
                demand_median_mb: 116.0,
                demand_sigma_user: 0.82,
                demand_sigma_day: 0.72,
                wifi_boost: 1.35,
                cell_appetite: 0.82,
                lte_demand_factor: 1.2,
                cell_daily_ceiling_mb: 215.0,
                survey_response_rate: 0.95,
            },
        }
    }

    /// Attitude mix for an OS.
    pub fn attitude_mix(&self, os: Os) -> AttitudeMix {
        match os {
            Os::Android => self.attitude_android,
            Os::Ios => self.attitude_ios,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attitude_mixes_sum_to_one() {
        for y in Year::ALL {
            let p = BehaviorParams::for_year(y);
            for os in [Os::Android, Os::Ios] {
                let (a, b, c) = p.attitude_mix(os);
                assert!((a + b + c - 1.0).abs() < 1e-9, "{y} {os:?}");
            }
        }
    }

    #[test]
    fn android_share_matches_table1() {
        let p = BehaviorParams::for_year(Year::Y2013);
        assert!((p.android_share - 0.540).abs() < 0.01);
        let p = BehaviorParams::for_year(Year::Y2015);
        assert!((p.android_share - 0.517).abs() < 0.01);
    }

    #[test]
    fn wifi_off_share_declines() {
        let off = |y| {
            let p = BehaviorParams::for_year(y);
            p.attitude_android.0 + p.attitude_android.1
        };
        assert!(off(Year::Y2013) > off(Year::Y2014));
        assert!(off(Year::Y2014) > off(Year::Y2015));
        // 2013 ≈ 50%, 2015 ≈ 40% (Fig. 9).
        assert!((off(Year::Y2013) - 0.50).abs() < 0.03);
        assert!((off(Year::Y2015) - 0.40).abs() < 0.03);
    }

    #[test]
    fn ios_always_on_exceeds_android() {
        for y in Year::ALL {
            let p = BehaviorParams::for_year(y);
            assert!(p.attitude_ios.2 > p.attitude_android.2 + 0.15, "{y}");
        }
    }

    #[test]
    fn demand_grows_yearly() {
        let m = |y| BehaviorParams::for_year(y).demand_median_mb;
        assert!(m(Year::Y2013) < m(Year::Y2014));
        assert!(m(Year::Y2014) < m(Year::Y2015));
    }

    #[test]
    fn home_ap_ownership_grows() {
        let o = |y| {
            let p = BehaviorParams::for_year(y);
            (p.owns_home_ap_on, p.owns_home_ap_off)
        };
        let (on13, off13) = o(Year::Y2013);
        let (on15, off15) = o(Year::Y2015);
        assert!(on13 < on15 && off13 < off15);
        assert!(on13 > 0.9 && off13 < 0.5);
    }
}
