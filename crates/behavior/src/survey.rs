//! The post-campaign questionnaire (Tables 8 and 9).
//!
//! Survey answers are generated *conditioned on each user's ground truth*
//! plus reporting noise, which reproduces the paper's perception-vs-reality
//! gap: users over-report public-WiFi connectivity relative to what the
//! traffic shows, and office "yes" answers exceed the tiny measured office
//! traffic share.

use crate::persona::{Persona, WifiAttitude};
use mobitrace_model::{SurveyLocation, SurveyReason, SurveyResponse, Year, YesNoNa};
use rand::Rng;

/// Generates survey responses for a campaign year.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurveyModel {
    /// Campaign year.
    pub year: Year,
}

impl SurveyModel {
    /// New model for a year.
    pub fn new(year: Year) -> SurveyModel {
        SurveyModel { year }
    }

    /// Produce one user's response.
    pub fn respond<R: Rng + ?Sized>(&self, rng: &mut R, persona: &Persona) -> SurveyResponse {
        let connected = [
            self.answer_home(rng, persona),
            self.answer_office(rng, persona),
            self.answer_public(rng, persona),
        ];
        let reasons = [
            self.reasons(rng, persona, SurveyLocation::Home, connected[0]),
            self.reasons(rng, persona, SurveyLocation::Office, connected[1]),
            self.reasons(rng, persona, SurveyLocation::Public, connected[2]),
        ];
        SurveyResponse { occupation: persona.occupation, connected, reasons }
    }

    fn answer_home<R: Rng + ?Sized>(&self, rng: &mut R, p: &Persona) -> YesNoNa {
        if rng.gen_bool(0.04) {
            return YesNoNa::Na;
        }
        // Owners who actually connect answer faithfully; owners who keep
        // WiFi off still often answer "yes" from memory of occasional use,
        // and a slice of non-owners over-claim — which is how the survey's
        // 70.4% (2013) exceeds the 66% inferred from traffic.
        let yes = if p.owns_home_ap {
            if p.attitude != WifiAttitude::AlwaysOff {
                rng.gen_bool(0.96)
            } else {
                rng.gen_bool(0.85)
            }
        } else {
            rng.gen_bool(0.20)
        };
        if yes {
            YesNoNa::Yes
        } else {
            YesNoNa::No
        }
    }

    fn answer_office<R: Rng + ?Sized>(&self, rng: &mut R, p: &Persona) -> YesNoNa {
        if rng.gen_bool(0.05) {
            return YesNoNa::Na;
        }
        let truly = p.office_byod && p.attitude != WifiAttitude::AlwaysOff;
        // Substantial over-claiming: pocket routers and guest networks get
        // reported as "office WiFi" (Table 8 shows ~28% yes vs a tiny
        // measured office share).
        let over_claim = match self.year {
            Year::Y2013 => 0.30,
            Year::Y2014 => 0.20,
            Year::Y2015 => 0.25,
        };
        let yes = if truly {
            rng.gen_bool(0.95)
        } else {
            p.occupation.commutes() && rng.gen_bool(over_claim)
        };
        if yes {
            YesNoNa::Yes
        } else {
            YesNoNa::No
        }
    }

    fn answer_public<R: Rng + ?Sized>(&self, rng: &mut R, p: &Persona) -> YesNoNa {
        if rng.gen_bool(0.06) {
            return YesNoNa::Na;
        }
        let truly = p.public_wifi_configured && p.attitude == WifiAttitude::AlwaysOn;
        let over_claim = match self.year {
            Year::Y2013 => 0.30,
            Year::Y2014 => 0.30,
            Year::Y2015 => 0.33,
        };
        let yes = if truly { rng.gen_bool(0.92) } else { rng.gen_bool(over_claim) };
        if yes {
            YesNoNa::Yes
        } else {
            YesNoNa::No
        }
    }

    /// Base probability (from Table 9) that a non-connecting user ticks a
    /// reason for a location in this year. `None` = the option was not
    /// offered that year.
    pub fn reason_probability(
        year: Year,
        loc: SurveyLocation,
        reason: SurveyReason,
    ) -> Option<f64> {
        use SurveyLocation as L;
        use SurveyReason as R;
        let yi = year.index();
        let pct: Option<[f64; 3]> = match (reason, loc) {
            (R::NoAvailableAps, L::Home) => Some([33.0, 34.0, 40.0]),
            (R::NoAvailableAps, L::Office) => Some([46.0, 49.0, 52.0]),
            (R::NoAvailableAps, L::Public) => Some([25.0, 24.0, 23.0]),
            (R::DifficultSetup, L::Home) => Some([32.0, 27.0, 21.0]),
            (R::DifficultSetup, L::Office) => Some([16.0, 15.0, 11.0]),
            (R::DifficultSetup, L::Public) => Some([31.0, 31.0, 25.0]),
            (R::NoConfiguration, L::Home) => Some([48.0, 35.0, 32.0]),
            (R::NoConfiguration, L::Office) => Some([33.0, 25.0, 22.0]),
            (R::NoConfiguration, L::Public) => Some([43.0, 31.0, 29.0]),
            (R::BatteryDrain, L::Home) => Some([18.0, 14.0, 15.0]),
            (R::BatteryDrain, L::Office) => Some([16.0, 9.0, 7.0]),
            (R::BatteryDrain, L::Public) => Some([25.0, 18.0, 13.0]),
            (R::Failed, L::Home) => Some([5.0, 6.0, 8.0]),
            (R::Failed, L::Office) => Some([7.0, 7.0, 7.0]),
            (R::Failed, L::Public) => Some([9.0, 8.0, 11.0]),
            // Security and LTE-is-enough were only offered from 2014.
            (R::SecurityIssue, L::Home) => Some([f64::NAN, 6.0, 14.0]),
            (R::SecurityIssue, L::Office) => Some([f64::NAN, 9.0, 14.0]),
            (R::SecurityIssue, L::Public) => Some([f64::NAN, 15.0, 35.0]),
            (R::LteEnough, L::Home) => Some([f64::NAN, 25.0, 21.0]),
            (R::LteEnough, L::Office) => Some([f64::NAN, 12.0, 10.0]),
            (R::LteEnough, L::Public) => Some([f64::NAN, 22.0, 23.0]),
            (R::Other, L::Home) => Some([6.0, 5.0, 5.0]),
            (R::Other, L::Office) => Some([12.0, 10.0, 10.0]),
            (R::Other, L::Public) => Some([9.0, 5.0, 4.0]),
        };
        let v = pct?[yi];
        if v.is_nan() {
            None
        } else {
            Some(v / 100.0)
        }
    }

    fn reasons<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        p: &Persona,
        loc: SurveyLocation,
        answer: YesNoNa,
    ) -> Vec<SurveyReason> {
        // Only users who did not connect explain why.
        if answer == YesNoNa::Yes {
            return Vec::new();
        }
        let mut out = Vec::new();
        for reason in SurveyReason::ALL {
            let Some(base) = SurveyModel::reason_probability(self.year, loc, reason) else {
                continue;
            };
            // Tilt by persona traits to keep answers internally coherent.
            let tilt = match reason {
                SurveyReason::BatteryDrain => {
                    if p.battery_concern {
                        2.0
                    } else {
                        0.6
                    }
                }
                SurveyReason::SecurityIssue => {
                    if p.security_conscious {
                        2.0
                    } else {
                        0.5
                    }
                }
                SurveyReason::NoConfiguration => {
                    if p.public_wifi_configured {
                        0.5
                    } else {
                        1.2
                    }
                }
                SurveyReason::NoAvailableAps if loc == SurveyLocation::Home => {
                    if p.owns_home_ap {
                        0.3
                    } else {
                        2.0
                    }
                }
                _ => 1.0,
            };
            if rng.gen_bool((base * tilt).clamp(0.0, 1.0)) {
                out.push(reason);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BehaviorParams;
    use mobitrace_geo::{DensitySurface, Grid};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn population(year: Year, n: usize, seed: u64) -> Vec<Persona> {
        let params = BehaviorParams::for_year(year);
        let grid = Grid::greater_tokyo();
        let res = DensitySurface::residential();
        let off = DensitySurface::office();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|i| Persona::sample(&mut rng, &params, i as u32, &grid, &res, &off)).collect()
    }

    fn yes_share(responses: &[SurveyResponse], loc: usize) -> f64 {
        let yes = responses.iter().filter(|r| r.connected[loc] == YesNoNa::Yes).count();
        yes as f64 / responses.len() as f64
    }

    fn responses(year: Year, seed: u64) -> Vec<SurveyResponse> {
        let pop = population(year, 3000, seed);
        let model = SurveyModel::new(year);
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 1);
        pop.iter().map(|p| model.respond(&mut rng, p)).collect()
    }

    #[test]
    fn home_yes_tracks_table8() {
        // Table 8 home yes: 70.4 / 72.9 / 78.2 %.
        for (year, want) in [(Year::Y2013, 0.704), (Year::Y2014, 0.729), (Year::Y2015, 0.782)] {
            let got = yes_share(&responses(year, 10 + year.index() as u64), 0);
            assert!((got - want).abs() < 0.08, "{year} home yes {got} want {want}");
        }
    }

    #[test]
    fn office_yes_overstates_reality() {
        let year = Year::Y2015;
        let pop = population(year, 3000, 20);
        let truly = pop.iter().filter(|p| p.office_byod).count() as f64 / pop.len() as f64;
        let got = yes_share(&responses(year, 20), 1);
        // Table 8: ~28% yes, far above the ~10% true BYOD share.
        assert!((got - 0.28).abs() < 0.08, "office yes {got}");
        assert!(got > truly + 0.08, "survey should overstate office WiFi");
    }

    #[test]
    fn public_yes_grows() {
        let y13 = yes_share(&responses(Year::Y2013, 30), 2);
        let y15 = yes_share(&responses(Year::Y2015, 32), 2);
        assert!(y15 > y13, "public yes should grow: {y13} → {y15}");
        assert!((y13 - 0.449).abs() < 0.09, "2013 public yes {y13}");
        assert!((y15 - 0.536).abs() < 0.09, "2015 public yes {y15}");
    }

    #[test]
    fn security_reason_absent_in_2013() {
        let rs = responses(Year::Y2013, 40);
        for r in &rs {
            for loc in 0..3 {
                assert!(!r.reasons[loc].contains(&SurveyReason::SecurityIssue));
                assert!(!r.reasons[loc].contains(&SurveyReason::LteEnough));
            }
        }
    }

    #[test]
    fn security_concern_rises_for_public() {
        let count = |year| {
            let rs = responses(year, 50);
            let no_public: Vec<_> = rs.iter().filter(|r| r.connected[2] != YesNoNa::Yes).collect();
            no_public.iter().filter(|r| r.reasons[2].contains(&SurveyReason::SecurityIssue)).count()
                as f64
                / no_public.len() as f64
        };
        let c14 = count(Year::Y2014);
        let c15 = count(Year::Y2015);
        assert!(c15 > c14 * 1.5, "security reason share {c14} → {c15}");
    }

    #[test]
    fn yes_answers_have_no_reasons() {
        for r in responses(Year::Y2014, 60) {
            for loc in 0..3 {
                if r.connected[loc] == YesNoNa::Yes {
                    assert!(r.reasons[loc].is_empty());
                }
            }
        }
    }

    #[test]
    fn reason_table_lookup() {
        assert_eq!(
            SurveyModel::reason_probability(
                Year::Y2013,
                SurveyLocation::Public,
                SurveyReason::SecurityIssue
            ),
            None
        );
        assert_eq!(
            SurveyModel::reason_probability(
                Year::Y2015,
                SurveyLocation::Public,
                SurveyReason::SecurityIssue
            ),
            Some(0.35)
        );
    }
}
