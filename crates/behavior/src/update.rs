//! The iOS 8.2 update event (§3.7).
//!
//! Apple released iOS 8.2 on 2015-03-10 (JST) during the third campaign.
//! The 565 MB update downloads over WiFi only (the iOS default), so update
//! timing is gated on WiFi availability: 58% of iPhones updated within two
//! weeks, half of the updaters within the first four days, and users
//! without a home AP updated rarely (14%) and late (median +3.5 days), some
//! going out of their way to public or office WiFi.

use crate::persona::{Persona, WifiAttitude};
use mobitrace_model::{ByteCount, Os, OsVersion};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How an eventual updater reaches WiFi for the download.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdatePath {
    /// Over the home AP.
    Home,
    /// Seeks out a public AP specifically for the update.
    SeekPublic,
    /// Uses the office AP.
    SeekOffice,
}

/// One device's resolved update plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdatePlan {
    /// Days after release when the user decides to update (fractional).
    /// The actual install lands at the first WiFi opportunity afterwards.
    pub decision_delay_days: f64,
    /// How the download will reach WiFi.
    pub path: UpdatePath,
}

/// The update event model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateModel {
    /// Campaign day (0-based) of the release.
    pub release_day: u32,
    /// Payload size: 565 MB, >10× the median daily download.
    pub size: ByteCount,
    /// Version installed.
    pub to_version: OsVersion,
}

impl UpdateModel {
    /// The iOS 8.2 event as placed in the 2015 campaign (release on
    /// campaign day 10 = 2015-03-10 for a Feb 28 start).
    pub fn ios_8_2() -> UpdateModel {
        UpdateModel { release_day: 10, size: ByteCount::mb(565), to_version: OsVersion::IOS_8_2 }
    }

    /// Decide whether/when a device updates within the campaign window.
    /// Returns `None` for devices that never update in the window.
    pub fn sample_plan<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        persona: &Persona,
    ) -> Option<UpdatePlan> {
        if persona.os != Os::Ios {
            return None;
        }
        let has_home_wifi = persona.owns_home_ap && persona.attitude != WifiAttitude::AlwaysOff;
        if has_home_wifi {
            // ~70% of home-WiFi iPhones update in the window, which with
            // the home-WiFi share of the 2015 iOS population lands at the
            // paper's 58% overall adoption.
            if !rng.gen_bool(0.70) {
                return None;
            }
            Some(UpdatePlan { decision_delay_days: decision_delay(rng), path: UpdatePath::Home })
        } else {
            // Users without home WiFi rarely update (14%), and those who do
            // go out of their way: mostly public APs, a couple via office.
            // 22% *intend* to; hunting for WiFi costs roughly a third of
            // them the window, netting the paper's 14% completion.
            if !rng.gen_bool(0.22) {
                return None;
            }
            let path = if persona.office_byod && rng.gen_bool(0.2) {
                UpdatePath::SeekOffice
            } else {
                UpdatePath::SeekPublic
            };
            Some(UpdatePlan {
                // Seekers decide like everyone else; the +3.5-day median
                // delay the paper measures emerges in the simulator from
                // waiting for a public-AP encounter.
                decision_delay_days: decision_delay(rng),
                path,
            })
        }
    }
}

/// Base decision delay: a flash-crowd head (10% on day one) with a
/// several-day tail, giving "half of updaters within four days".
fn decision_delay<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    if rng.gen_bool(0.18) {
        rng.gen_range(0.0..1.0)
    } else {
        // Gamma-ish tail via sum of two exponentials.
        let e1: f64 = -rng.gen_range(1e-9f64..1.0).ln();
        let e2: f64 = -rng.gen_range(1e-9f64..1.0).ln();
        (e1 + e2) * 2.2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::BehaviorParams;
    use mobitrace_geo::{DensitySurface, Grid};
    use mobitrace_model::Year;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ios_population(n: usize, seed: u64) -> Vec<Persona> {
        let params = BehaviorParams::for_year(Year::Y2015);
        let grid = Grid::greater_tokyo();
        let res = DensitySurface::residential();
        let off = DensitySurface::office();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut out = Vec::new();
        let mut i = 0u32;
        while out.len() < n {
            let p = Persona::sample(&mut rng, &params, i, &grid, &res, &off);
            if p.os == Os::Ios {
                out.push(p);
            }
            i += 1;
        }
        out
    }

    #[test]
    fn android_never_plans() {
        let params = BehaviorParams::for_year(Year::Y2015);
        let grid = Grid::greater_tokyo();
        let res = DensitySurface::residential();
        let off = DensitySurface::office();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let model = UpdateModel::ios_8_2();
        for i in 0..200 {
            let p = Persona::sample(&mut rng, &params, i, &grid, &res, &off);
            if p.os == Os::Android {
                assert!(model.sample_plan(&mut rng, &p).is_none());
            }
        }
    }

    #[test]
    fn overall_adoption_near_58_percent() {
        let pop = ios_population(3000, 2);
        let model = UpdateModel::ios_8_2();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let planned = pop.iter().filter(|p| model.sample_plan(&mut rng, p).is_some()).count()
            as f64
            / pop.len() as f64;
        // Plan intent sits a little above the paper's 58% realized
        // adoption: seekers without home WiFi may fail to find any.
        assert!((planned - 0.62).abs() < 0.05, "plan intent {planned}");
    }

    #[test]
    fn no_home_ap_users_update_rarely_and_late() {
        let pop = ios_population(4000, 4);
        let model = UpdateModel::ios_8_2();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut home_delays = Vec::new();
        let mut nohome_delays = Vec::new();
        let (mut nohome_total, mut nohome_updated) = (0, 0);
        for p in &pop {
            let has_home = p.owns_home_ap && p.attitude != WifiAttitude::AlwaysOff;
            let plan = model.sample_plan(&mut rng, p);
            if !has_home {
                nohome_total += 1;
                if plan.is_some() {
                    nohome_updated += 1;
                }
            }
            if let Some(plan) = plan {
                if has_home {
                    home_delays.push(plan.decision_delay_days);
                } else {
                    nohome_delays.push(plan.decision_delay_days);
                }
            }
        }
        let rate = nohome_updated as f64 / nohome_total as f64;
        assert!((rate - 0.22).abs() < 0.05, "no-home intent rate {rate}");
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        // Decision delays are now identical across groups; the +3.5-day
        // completion gap the paper reports emerges from WiFi-encounter
        // waiting in the simulator (asserted in the fig18 experiment).
        let extra = med(&mut nohome_delays) - med(&mut home_delays);
        assert!(extra.abs() < 2.0, "median extra decision delay {extra} days");
    }

    #[test]
    fn flash_crowd_head() {
        let pop = ios_population(3000, 6);
        let model = UpdateModel::ios_8_2();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let delays: Vec<f64> = pop
            .iter()
            .filter_map(|p| model.sample_plan(&mut rng, p))
            .map(|pl| pl.decision_delay_days)
            .collect();
        let day1 = delays.iter().filter(|&&d| d < 1.0).count() as f64 / delays.len() as f64;
        let day4 = delays.iter().filter(|&&d| d < 4.0).count() as f64 / delays.len() as f64;
        assert!((0.10..0.35).contains(&day1), "day-1 share {day1}");
        assert!((0.40..0.75).contains(&day4), "day-4 share {day4}");
    }

    #[test]
    fn seekers_use_public_more_than_office() {
        let pop = ios_population(6000, 8);
        let model = UpdateModel::ios_8_2();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let (mut public, mut office) = (0, 0);
        for p in &pop {
            if let Some(plan) = model.sample_plan(&mut rng, p) {
                match plan.path {
                    UpdatePath::SeekPublic => public += 1,
                    UpdatePath::SeekOffice => office += 1,
                    UpdatePath::Home => {}
                }
            }
        }
        assert!(public > office, "public {public} vs office {office}");
        assert!(public > 0);
    }

    #[test]
    fn payload_is_565_mb() {
        let m = UpdateModel::ios_8_2();
        assert_eq!(m.size, ByteCount::mb(565));
        assert_eq!(m.release_day, 10);
        assert_eq!(m.to_version, OsVersion::new(8, 2));
    }
}
