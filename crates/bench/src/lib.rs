//! # mobitrace-bench
//!
//! Criterion benchmark harness. Three suites:
//!
//! - `paper_tables` — the analysis behind every table (Tables 1–9);
//! - `paper_figures` — the analysis behind every figure (Figs. 1–19) plus
//!   the in-text estimates;
//! - `substrate` — ablation benches for the design choices DESIGN.md calls
//!   out: wire-codec throughput, server ingest, spatial-index scans,
//!   AP-classification passes, counter-delta cleaning and campaign
//!   simulation itself.
//!
//! Datasets are simulated once per suite (outside the timed loops) at a
//! small scale; the timed code is the *analysis*, which is what a consumer
//! of this library runs repeatedly.

#![forbid(unsafe_code)]

use mobitrace_report::CampaignSet;

/// Campaign scale used by the benches: big enough that analyses measure
/// real work, small enough that suite setup stays in seconds.
pub const BENCH_SCALE: f64 = 0.05;

/// Seed for bench datasets (fixed: benches must compare like with like).
pub const BENCH_SEED: u64 = 0xBEEF;

/// Simulate the bench campaign set once.
pub fn bench_set() -> CampaignSet {
    CampaignSet::simulate(BENCH_SCALE, BENCH_SEED)
}
