//! Ablation benches for the substrate design choices DESIGN.md calls out:
//! the wire codec, server ingest, spatial-index scans, the classification
//! heuristics, counter-delta cleaning, RNG stream derivation, and the
//! simulator itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mobitrace_bench::{bench_set, BENCH_SEED};
use mobitrace_collector::{decode_frame, encode_frame, CollectionServer};
use mobitrace_deploy::world::WorldSpec;
use mobitrace_deploy::{ApWorld, DeployParams};
use mobitrace_geo::{DensitySurface, Grid, PoiSet};
use mobitrace_model::*;
use mobitrace_sim::{run_campaign, CampaignConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn sample_record(seq: u32) -> Record {
    let mut counters = CounterSnapshot::default();
    counters.lte.add(ByteCount::mb(3), ByteCount::kb(500));
    counters.wifi.add(ByteCount::mb(11), ByteCount::mb(2));
    Record {
        device: DeviceId(seq % 500),
        os: Os::Android,
        seq,
        time: SimTime::from_minutes(seq * 10),
        boot_epoch: 0,
        counters,
        wifi: WifiState::Associated(AssocInfo {
            bssid: Bssid::from_u64(u64::from(seq)),
            essid: Essid::new("aterm-0a1b2c"),
            band: Band::Ghz24,
            channel: Channel(6),
            rssi: Dbm::new(-57),
        }),
        scan: ScanSummary { n24_all: 9, n24_strong: 3, ..ScanSummary::default() },
        apps: vec![AppCounter {
            category: AppCategory::Video,
            counters: TrafficCounters {
                rx_bytes: 1 << 20,
                tx_bytes: 1 << 14,
                rx_pkts: 1200,
                tx_pkts: 90,
            },
        }],
        geo: CellId::new(12, 8),
        battery_pct: 77,
        tethering: false,
        os_version: OsVersion::new(4, 4),
    }
}

fn bench_codec(c: &mut Criterion) {
    let record = sample_record(7);
    let frame = encode_frame(&record);
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("encode_frame", |b| b.iter(|| black_box(encode_frame(&record))));
    group.bench_function("decode_frame", |b| {
        b.iter(|| black_box(decode_frame(&frame).expect("valid frame")))
    });
    group.finish();
}

fn bench_server_ingest(c: &mut Criterion) {
    let frames: Vec<_> = (0..1000u32).map(|s| encode_frame(&sample_record(s))).collect();
    let mut group = c.benchmark_group("server");
    group.throughput(Throughput::Elements(frames.len() as u64));
    group.bench_function("ingest_1000_frames", |b| {
        b.iter(|| {
            let server = CollectionServer::new();
            for f in &frames {
                let _ = server.ingest(f);
            }
            black_box(server.len())
        })
    });
    group.finish();
}

/// Contended multi-producer ingest: the scenario the lock-striped shards
/// target. The single-shard variant is the pre-sharding design (one global
/// lock) for comparison.
fn bench_contended_ingest(c: &mut Criterion) {
    const PER_THREAD: u32 = 500;
    let chunks_for = |n_threads: u32| -> Vec<Vec<_>> {
        (0..n_threads)
            .map(|t| {
                (0..PER_THREAD).map(|s| encode_frame(&sample_record(t * PER_THREAD + s))).collect()
            })
            .collect()
    };
    let run = |server: &CollectionServer, chunks: &[Vec<_>]| {
        std::thread::scope(|scope| {
            for chunk in chunks {
                scope.spawn(move || {
                    for f in chunk {
                        let _ = server.ingest(f);
                    }
                });
            }
        });
        server.len()
    };
    let mut group = c.benchmark_group("server_contended");
    for n in [4u32, 8] {
        let chunks = chunks_for(n);
        group.throughput(Throughput::Elements(u64::from(n) * u64::from(PER_THREAD)));
        group.bench_function(format!("ingest_{n}_threads"), |b| {
            b.iter(|| {
                let server = CollectionServer::new();
                black_box(run(&server, &chunks))
            })
        });
    }
    let chunks = chunks_for(8);
    group.throughput(Throughput::Elements(8 * u64::from(PER_THREAD)));
    group.bench_function("ingest_8_threads_single_shard", |b| {
        b.iter(|| {
            let server = CollectionServer::with_shards(1);
            black_box(run(&server, &chunks))
        })
    });
    group.finish();
}

/// Batch framing vs per-record allocation: the agent's upload queue and
/// the server's stream ingest ride these paths.
fn bench_codec_batch(c: &mut Criterion) {
    use bytes::BytesMut;
    use mobitrace_collector::{decode_batch_into, encode_batch};
    let records: Vec<Record> = (0..1000u32).map(sample_record).collect();
    let mut stream_buf = BytesMut::new();
    encode_batch(&records, &mut stream_buf);
    let stream = stream_buf.freeze();
    let mut group = c.benchmark_group("codec_batch");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("encode_1000_standalone", |b| {
        b.iter(|| {
            let frames: Vec<_> = records.iter().map(encode_frame).collect();
            black_box(frames)
        })
    });
    group.bench_function("encode_1000_batched", |b| {
        let mut buf = BytesMut::new();
        b.iter(|| {
            buf.clear();
            encode_batch(&records, &mut buf);
            black_box(buf.len())
        })
    });
    group.bench_function("decode_1000_stream", |b| {
        let mut out = Vec::with_capacity(records.len());
        b.iter(|| {
            out.clear();
            let mut s = stream.clone();
            decode_batch_into(&mut s, &mut out).expect("valid stream");
            black_box(out.len())
        })
    });
    group.finish();
}

/// The SoA-vs-AoS ablation the columnar layout exists for: the counter
/// aggregation and per-app CSR walks every hot analysis pass reduces to,
/// over `DatasetColumns` and over the same `Dataset::bins` rows.
fn bench_columns_vs_rows(c: &mut Criterion) {
    use mobitrace_model::lanes;
    let set = bench_set();
    let ds = set.year(Year::Y2015);
    let cols = DatasetColumns::build(ds);
    let mut group = c.benchmark_group("columns_vs_rows");
    group.throughput(Throughput::Elements(ds.bins.len() as u64));
    group.bench_function("counter_sum_rows", |b| {
        b.iter(|| {
            let mut wifi = 0u64;
            let mut cell = 0u64;
            for bin in &ds.bins {
                wifi += bin.rx_wifi + bin.tx_wifi;
                cell += bin.rx_cell() + bin.tx_cell();
            }
            black_box((wifi, cell))
        })
    });
    group.bench_function("counter_sum_cols", |b| {
        b.iter(|| {
            let wifi = cols.rx_wifi.iter().sum::<u64>() + cols.tx_wifi.iter().sum::<u64>();
            let cell = cols.rx_3g.iter().sum::<u64>()
                + cols.tx_3g.iter().sum::<u64>()
                + cols.rx_lte.iter().sum::<u64>()
                + cols.tx_lte.iter().sum::<u64>();
            black_box((wifi, cell))
        })
    });
    group.bench_function("counter_sum_cols_simd", |b| {
        b.iter(|| {
            let wifi = lanes::sum_paired(&cols.rx_wifi, &cols.tx_wifi);
            let cell = lanes::sum_paired(&cols.rx_3g, &cols.tx_3g)
                + lanes::sum_paired(&cols.rx_lte, &cols.tx_lte);
            black_box((wifi, cell))
        })
    });
    group.bench_function("user_days_rows", |b| {
        b.iter(|| black_box(mobitrace_core::daily::user_days(ds)))
    });
    group.bench_function("user_days_cols_simd", |b| {
        b.iter(|| black_box(mobitrace_core::daily::user_days_cols(&cols)))
    });
    group.bench_function("app_scan_rows", |b| {
        b.iter(|| {
            let mut per_cat = [0u64; AppCategory::ALL.len()];
            for bin in &ds.bins {
                for app in &bin.apps {
                    per_cat[app.category.index()] += app.rx_bytes + app.tx_bytes;
                }
            }
            black_box(per_cat)
        })
    });
    group.bench_function("app_scan_cols", |b| {
        b.iter(|| {
            let mut per_cat = [0u64; AppCategory::ALL.len()];
            for app in &cols.apps {
                per_cat[app.category.index()] += app.rx_bytes + app.tx_bytes;
            }
            black_box(per_cat)
        })
    });
    group.bench_function("build_columns", |b| b.iter(|| black_box(DatasetColumns::build(ds))));
    group.finish();
}

fn bench_world(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    let res = DensitySurface::residential();
    let homes: Vec<(u32, mobitrace_geo::GeoPoint)> =
        (0..80).map(|k| (k, res.sample_point(&mut rng))).collect();
    let pois = PoiSet::generate(40, &mut rng);
    let spec = WorldSpec {
        params: DeployParams::for_year(Year::Y2015),
        participant_homes: homes,
        office_sites: vec![],
        pois,
        n_participants: 100,
        fon_home_share: 0.03,
    };
    let world = ApWorld::generate(&spec, &mut rng);
    let grid = Grid::greater_tokyo();
    let probe = grid.centre_of(CellId::new(15, 12));
    let mut group = c.benchmark_group("world");
    group.bench_function("generate_100_user_world", |b| {
        b.iter_batched(
            || ChaCha8Rng::seed_from_u64(BENCH_SEED),
            |mut r| black_box(ApWorld::generate(&spec, &mut r)),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("scan_query", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| black_box(world.scan(probe, &mut r)))
    });
    group.finish();
}

/// The scan hot path unbundled: allocating scan vs buffer reuse vs
/// scan-plan construction (the once-per-cell cost) vs plan replay (the
/// per-step cost the cached device loop pays).
fn bench_world_scan(c: &mut Criterion) {
    use mobitrace_radio::GaussianPair;
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    let res = DensitySurface::residential();
    let homes: Vec<(u32, mobitrace_geo::GeoPoint)> =
        (0..80).map(|k| (k, res.sample_point(&mut rng))).collect();
    // Probe at a participant home: the dense-neighbourhood case the device
    // loop hits most often.
    let probe = homes[0].1;
    let pois = PoiSet::generate(40, &mut rng);
    let spec = WorldSpec {
        params: DeployParams::for_year(Year::Y2015),
        participant_homes: homes,
        office_sites: vec![],
        pois,
        n_participants: 100,
        fon_home_share: 0.03,
    };
    let world = ApWorld::generate(&spec, &mut rng);
    let mut group = c.benchmark_group("world_scan");
    group.bench_function("scan_alloc", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| black_box(world.scan(probe, &mut r)))
    });
    group.bench_function("scan_into", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let mut buf = Vec::new();
        b.iter(|| {
            world.scan_into(probe, &mut r, &mut buf);
            black_box(buf.len())
        })
    });
    group
        .bench_function("plan_build", |b| b.iter(|| black_box(world.build_scan_plan(probe).len())));
    group.bench_function("plan_sample", |b| {
        let plan = world.build_scan_plan(probe);
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let mut gauss = GaussianPair::new();
        let mut buf = Vec::new();
        b.iter(|| {
            buf.clear();
            plan.sample(&mut r, &mut gauss, |e, rssi| buf.push(e.obs(rssi)));
            black_box(buf.len())
        })
    });
    group.bench_function("background_homes_into", |b| {
        let mut ids = Vec::new();
        b.iter(|| {
            world.background_homes_near_into(probe, 60.0, &mut ids);
            black_box(ids.len())
        })
    });
    group.finish();
}

/// Plan replay ablation: the blocked two-phase `sample` against the
/// retained scalar reference, on the densest home plan the bench world
/// offers (the same shape the cached device loop replays every bin).
fn bench_scan_replay(c: &mut Criterion) {
    use mobitrace_radio::GaussianPair;
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED);
    let res = DensitySurface::residential();
    let homes: Vec<(u32, mobitrace_geo::GeoPoint)> =
        (0..400).map(|k| (k, res.sample_point(&mut rng))).collect();
    let pois = PoiSet::generate(80, &mut rng);
    let spec = WorldSpec {
        params: DeployParams::for_year(Year::Y2015),
        participant_homes: homes.clone(),
        office_sites: vec![],
        pois,
        n_participants: 400,
        fon_home_share: 0.03,
    };
    let world = ApWorld::generate(&spec, &mut rng);
    let probe = homes
        .iter()
        .map(|&(_, p)| p)
        .max_by_key(|&p| world.build_scan_plan(p).len())
        .expect("homes non-empty");
    let plan = world.build_scan_plan(probe);
    let mut group = c.benchmark_group("scan_replay");
    group.throughput(Throughput::Elements(plan.len() as u64));
    group.bench_function("sample_blocked", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let mut gauss = GaussianPair::new();
        let mut buf = Vec::new();
        b.iter(|| {
            buf.clear();
            plan.sample(&mut r, &mut gauss, |e, rssi| buf.push(e.obs(rssi)));
            black_box(buf.len())
        })
    });
    group.bench_function("sample_scalar", |b| {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let mut gauss = GaussianPair::new();
        let mut buf = Vec::new();
        b.iter(|| {
            buf.clear();
            plan.sample_scalar(&mut r, &mut gauss, |e, rssi| buf.push(e.obs(rssi)));
            black_box(buf.len())
        })
    });
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    let set = bench_set();
    let ds = set.year(Year::Y2015);
    let mut group = c.benchmark_group("classification");
    group.sample_size(20);
    group.bench_function("ap_classify_2015", |b| {
        b.iter(|| black_box(mobitrace_core::apclass::classify(ds)))
    });
    group.bench_function("user_days_2015", |b| {
        b.iter(|| black_box(mobitrace_core::daily::user_days(ds)))
    });
    group.finish();
}

/// Full context build (bin index + the three analysis passes) and the
/// index build alone, so index cost is attributable.
fn bench_context_build(c: &mut Criterion) {
    let set = bench_set();
    let ds = set.year(Year::Y2015);
    let mut group = c.benchmark_group("context");
    group.sample_size(20);
    group.bench_function("dataset_index_2015", |b| b.iter(|| black_box(DatasetIndex::build(ds))));
    group.bench_function("analysis_context_2015", |b| {
        b.iter(|| black_box(mobitrace_core::AnalysisContext::new(ds)))
    });
    group.finish();
}

/// Ablation: per-device ChaCha streams vs a single shared stream would
/// serialise the simulator; measure the stream-derivation cost that buys
/// the parallelism.
fn bench_rng_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.bench_function("derive_device_stream", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let mut rng = ChaCha8Rng::seed_from_u64(
                BENCH_SEED ^ (u64::from(i) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            black_box(rng.gen::<u64>())
        })
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("campaign_30_users_4_days", |b| {
        b.iter(|| {
            let mut cfg = CampaignConfig::scaled(Year::Y2014, 0.017);
            cfg.days = 4;
            cfg.seed = BENCH_SEED;
            black_box(run_campaign(&cfg))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_codec_batch,
    bench_columns_vs_rows,
    bench_server_ingest,
    bench_contended_ingest,
    bench_world,
    bench_world_scan,
    bench_scan_replay,
    bench_classification,
    bench_context_build,
    bench_rng_streams,
    bench_simulation
);
criterion_main!(benches);
