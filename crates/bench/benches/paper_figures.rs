//! One bench per paper figure (and in-text estimate): times the analysis
//! that regenerates it.

use criterion::{criterion_group, criterion_main, Criterion};
use mobitrace_bench::bench_set;
use mobitrace_report::{run_experiment, CampaignSet};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let set: CampaignSet = bench_set();
    let ctxs = set.contexts();
    let mut group = c.benchmark_group("paper_figures");
    group.sample_size(20);
    for id in [
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "fig19",
        "offload_potential",
        "implications",
        "home_inference",
    ] {
        group.bench_function(id, |b| {
            b.iter(|| black_box(run_experiment(id, &set, &ctxs).expect("known id")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
