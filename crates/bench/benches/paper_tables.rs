//! One bench per paper table: times the analysis that regenerates it.

use criterion::{criterion_group, criterion_main, Criterion};
use mobitrace_bench::bench_set;
use mobitrace_core::AnalysisContext;
use mobitrace_model::Year;
use mobitrace_report::{run_experiment, CampaignSet};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let set: CampaignSet = bench_set();
    let ctxs = set.contexts();
    let mut group = c.benchmark_group("paper_tables");
    group.sample_size(20);
    for id in
        ["table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9"]
    {
        group.bench_function(id, |b| {
            b.iter(|| black_box(run_experiment(id, &set, &ctxs).expect("known id")))
        });
    }
    // The shared preprocessing the tables build on.
    group.bench_function("analysis_context_2015", |b| {
        b.iter(|| black_box(AnalysisContext::new(set.year(Year::Y2015))))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
