//! The incremental cleaner: tap batches in, bit-identical dataset out.
//!
//! [`LiveEngine`] consumes [`TapBatch`]es from a
//! [`CollectionServer`](mobitrace_collector::CollectionServer) ingest tap
//! and maintains, online, exactly what the batch pipeline
//! ([`mobitrace_collector::clean`]) would produce over the same records:
//! counter-delta reconstruction (reboot-safe), tethering removal, the
//! retroactive iOS-update-day exclusion, and the canonical AP table — plus
//! the bin-range index and columnar transpose, via
//! [`LiveTableBuilder`](mobitrace_model::LiveTableBuilder).
//!
//! # Watermarks and lateness
//!
//! The batch cleaner sees each device's records sorted by sequence number;
//! a streaming cleaner sees them in arrival order. The engine buffers each
//! device's arrivals in a per-device *lane* (a seq-ordered map) and only
//! *folds* a record — runs the cleaning rules and appends the bin — once
//! the device's **watermark** passes it: the maximum sample time seen from
//! that device, minus a lateness allowance. Per device, sequence numbers
//! and sample times increase together (the agent stamps both), so folding
//! the seq-ordered prefix up to the watermark replays the batch cleaner's
//! order exactly.
//!
//! A record arriving *behind* the watermark is counted `late_dropped` and
//! remembered in the engine's late-key set. The convergence contract is
//! therefore exact, not approximate: the final snapshot is bit-identical
//! to the batch clean of (server records − late keys) — see
//! [`check_convergence`]. A record that would fold out of sequence order
//! is necessarily behind the watermark (its time is below an already
//! folded, hence watermark-closed, time), so the late set is precisely the
//! set of records the engine *may not* fold, and the fold order invariant
//! holds unconditionally.
//!
//! Duplicates — redelivered frames, and whole-store replays after
//! [`recover`](mobitrace_collector::CollectionServer::recover) — are
//! filtered against the folded/pending/late sets and counted
//! `dup_dropped`, which is what makes crash replay safe: a replayed batch
//! re-offers everything, the engine keeps only what it has never seen.

use mobitrace_collector::{clean, CleanOptions, CleanStats, TapBatch};
use mobitrace_model::{
    AppBin, CampaignMeta, Carrier, Dataset, DatasetColumns, DatasetIndex, DeviceId, DeviceInfo,
    LiveRow, LiveSnapshot, LiveTableBuilder, Os, OsVersion, Record, SimTime, TrafficCounters,
};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Live-engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct LiveOptions {
    /// Cleaning rules (same options the batch pipeline takes).
    pub clean: CleanOptions,
    /// Watermark allowance: a record may arrive up to this many minutes
    /// behind the newest sample seen from its device and still fold in.
    /// Anything later is counted `late_dropped` and excluded from the
    /// convergence reference too.
    pub lateness_minutes: u32,
    /// Additive floor on the compaction trigger (tail rows before a
    /// compaction is considered); the multiplicative half-of-merged rule
    /// on top keeps total compaction work linear.
    pub compact_min_tail: usize,
}

impl Default for LiveOptions {
    fn default() -> LiveOptions {
        LiveOptions {
            clean: CleanOptions::default(),
            // Three bins of slack: generous against transport reordering,
            // small enough that folds trail the campaign closely.
            lateness_minutes: 30,
            compact_min_tail: 1024,
        }
    }
}

/// Counters the engine maintains while streaming.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Records offered (tap publishes, replays included).
    pub records_seen: u64,
    /// Records folded through the cleaning rules.
    pub folded: u64,
    /// Records dropped for arriving behind their device's watermark.
    pub late_dropped: u64,
    /// Records dropped as duplicates (redeliveries and crash replays).
    pub dup_dropped: u64,
    /// Tap batches consumed.
    pub batches: u64,
    /// Tap batches that were crash-recovery replays.
    pub replay_batches: u64,
    /// Folded records removed for tethering.
    pub tethering_removed: u64,
    /// Folded records removed around iOS updates (including rows removed
    /// retroactively when the update was detected after they landed).
    pub update_days_removed: u64,
    /// Reboots detected (counter resets).
    pub reboots: u64,
    /// Sequence gaps detected.
    pub gaps: u64,
    /// Records the gaps prove were lost.
    pub missing_records: u64,
    /// Bin rows currently live (appended minus retroactively removed).
    pub bins_out: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Nanoseconds spent offering and folding records (incremental work,
    /// proportional to batch size).
    pub fold_nanos: u64,
    /// Nanoseconds spent compacting (amortised O(1) per appended row).
    pub compact_nanos: u64,
}

impl LiveStats {
    /// The engine's cleaning counters in batch [`CleanStats`] form, for
    /// direct comparison with a batch clean over the same records.
    pub fn as_clean_stats(&self) -> CleanStats {
        CleanStats {
            records_in: self.folded,
            bins_out: self.bins_out,
            tethering_removed: self.tethering_removed,
            update_days_removed: self.update_days_removed,
            reboots: self.reboots,
            gaps: self.gaps,
            missing_records: self.missing_records,
        }
    }
}

/// Per-device streaming state.
#[derive(Debug, Default)]
struct Lane {
    /// Arrived but not yet folded, keyed (= ordered) by sequence number.
    pending: BTreeMap<u32, Record>,
    /// Newest sample time seen (drives the watermark).
    max_time: Option<SimTime>,
    /// Last folded record (delta base), advancing exactly as the batch
    /// cleaner's `prev` does — including over filtered records.
    prev: Option<Record>,
    /// Folded sequence numbers, ascending (duplicate detection).
    folded_seqs: Vec<u32>,
    /// iOS-update day, once the version transition folds past.
    update_day: Option<u32>,
    /// Whether this lane is in the engine's touched scratch list.
    dirty: bool,
}

impl Lane {
    /// Closed watermark minute, once enough time has been seen.
    fn watermark(&self, lateness_minutes: u32) -> Option<u32> {
        self.max_time.and_then(|m| m.minute.checked_sub(lateness_minutes))
    }
}

/// Everything a finished live run hands back.
#[derive(Debug)]
pub struct FinishedLive {
    /// The final snapshot (all records folded, final compaction done).
    pub snapshot: Arc<LiveSnapshot>,
    /// Final counters.
    pub stats: LiveStats,
    /// `(device, seq)` keys the engine refused as late; the convergence
    /// reference excludes exactly these.
    pub late: HashSet<(DeviceId, u32)>,
}

/// The streaming cleaner + dataset builder. See the [module docs](self).
#[derive(Debug)]
pub struct LiveEngine {
    opts: LiveOptions,
    lanes: Vec<Lane>,
    builder: LiveTableBuilder,
    late: HashSet<(DeviceId, u32)>,
    stats: LiveStats,
    snapshot: Arc<LiveSnapshot>,
    /// Lanes offered to since the last fold sweep.
    touched: Vec<u32>,
}

/// A device table of the right shape before the real one exists: the
/// campaign runner only learns survey answers and ground truth after the
/// device loop, so the engine starts from placeholders and the runner
/// calls [`LiveEngine::install_devices`] before finishing.
pub fn placeholder_devices(n: usize) -> Vec<DeviceInfo> {
    (0..n)
        .map(|i| DeviceInfo {
            device: DeviceId(i as u32),
            os: Os::Android,
            carrier: Carrier::A,
            recruited: true,
            survey: None,
            truth: None,
        })
        .collect()
}

impl LiveEngine {
    /// Engine over `n_devices` placeholder devices (see
    /// [`placeholder_devices`]).
    pub fn new(meta: CampaignMeta, n_devices: usize, opts: LiveOptions) -> LiveEngine {
        LiveEngine::with_devices(meta, placeholder_devices(n_devices), opts)
    }

    /// Engine over an explicit device table.
    pub fn with_devices(
        meta: CampaignMeta,
        devices: Vec<DeviceInfo>,
        opts: LiveOptions,
    ) -> LiveEngine {
        let n = devices.len();
        let empty =
            Dataset { meta: meta.clone(), devices: devices.clone(), aps: vec![], bins: vec![] };
        let snapshot = Arc::new(LiveSnapshot {
            index: DatasetIndex::build(&empty),
            cols: DatasetColumns::build(&empty),
            ds: empty,
            compactions: 0,
        });
        LiveEngine {
            opts,
            lanes: (0..n).map(|_| Lane::default()).collect(),
            builder: LiveTableBuilder::new(meta, devices)
                .with_compact_min_tail(opts.compact_min_tail),
            late: HashSet::new(),
            stats: LiveStats::default(),
            snapshot,
            touched: Vec::new(),
        }
    }

    /// Consume one tap batch: offer every record, fold the touched lanes
    /// up to their watermarks, compact if the tails have amortised.
    pub fn ingest_batch(&mut self, batch: &TapBatch) {
        self.stats.batches += 1;
        if batch.replay {
            self.stats.replay_batches += 1;
        }
        let t0 = Instant::now();
        for r in &batch.records {
            self.offer(r);
        }
        while let Some(d) = self.touched.pop() {
            self.lanes[d as usize].dirty = false;
            self.fold_lane(d as usize, false);
        }
        self.stats.fold_nanos += t0.elapsed().as_nanos() as u64;
        if self.builder.should_compact() {
            self.compact();
        }
    }

    /// Replace the placeholder device table (same length) — survey answers
    /// and ground truth only exist once the campaign's device loop is done.
    pub fn install_devices(&mut self, devices: Vec<DeviceInfo>) {
        self.builder.install_devices(devices);
    }

    /// The last published snapshot — an `Arc` clone, O(1). It lags the
    /// fold frontier by the uncompacted tails; [`finish`](Self::finish)
    /// publishes the exact final state.
    pub fn snapshot(&self) -> Arc<LiveSnapshot> {
        Arc::clone(&self.snapshot)
    }

    /// Current counters.
    pub fn stats(&self) -> LiveStats {
        self.stats
    }

    /// End of stream: fold everything still pending (no more arrivals, so
    /// the watermark is moot), run the final compaction, hand back the
    /// snapshot, the counters and the late-key set.
    pub fn finish(mut self) -> FinishedLive {
        let t0 = Instant::now();
        for d in 0..self.lanes.len() {
            self.fold_lane(d, true);
        }
        self.stats.fold_nanos += t0.elapsed().as_nanos() as u64;
        self.compact();
        FinishedLive { snapshot: self.snapshot, stats: self.stats, late: self.late }
    }

    /// Classify one arrival: duplicate, late, or pending.
    fn offer(&mut self, r: &Record) {
        self.stats.records_seen += 1;
        let d = r.device.index();
        assert!(d < self.lanes.len(), "record for unknown device {}", r.device);
        let lane = &mut self.lanes[d];
        if lane.max_time.is_none_or(|m| r.time > m) {
            lane.max_time = Some(r.time);
        }
        if !lane.dirty {
            lane.dirty = true;
            self.touched.push(d as u32);
        }
        if lane.folded_seqs.binary_search(&r.seq).is_ok()
            || lane.pending.contains_key(&r.seq)
            || self.late.contains(&(r.device, r.seq))
        {
            self.stats.dup_dropped += 1;
            return;
        }
        if let Some(w) = lane.watermark(self.opts.lateness_minutes) {
            if r.time.minute <= w {
                self.late.insert((r.device, r.seq));
                self.stats.late_dropped += 1;
                return;
            }
        }
        lane.pending.insert(r.seq, r.clone());
    }

    /// Fold a lane's pending prefix: everything at or behind the watermark
    /// (or everything, at end of stream), in sequence order.
    fn fold_lane(&mut self, d: usize, drain_all: bool) {
        let w = match (drain_all, self.lanes[d].watermark(self.opts.lateness_minutes)) {
            (true, _) => u32::MAX,
            (false, Some(w)) => w,
            (false, None) => return,
        };
        loop {
            let lane = &mut self.lanes[d];
            match lane.pending.first_key_value() {
                Some((_, r)) if r.time.minute <= w => {}
                _ => break,
            }
            let (_, r) = lane.pending.pop_first().expect("peeked entry");
            Self::fold_record(lane, &mut self.builder, &mut self.stats, &self.opts, r);
        }
    }

    /// Run one record through the cleaning rules — a faithful streaming
    /// replica of one iteration of the batch cleaner's per-device loop
    /// (`crates/collector/src/clean.rs`), plus the retroactive update-day
    /// tombstone the batch cleaner gets for free from its lookahead pass.
    fn fold_record(
        lane: &mut Lane,
        builder: &mut LiveTableBuilder,
        stats: &mut LiveStats,
        opts: &LiveOptions,
        r: Record,
    ) {
        // Gap accounting: a leading gap on the first fold, exact widths
        // after that (seqs are monotonic across reboots).
        match &lane.prev {
            None => {
                if r.seq > 0 {
                    stats.gaps += 1;
                    stats.missing_records += u64::from(r.seq);
                }
            }
            Some(p) => {
                if r.seq > p.seq + 1 {
                    stats.gaps += 1;
                    stats.missing_records += u64::from(r.seq - p.seq - 1);
                }
            }
        }

        // Delta reconstruction against the previous folded record.
        let (d3g, dlte, dwifi, dapps) = match &lane.prev {
            Some(p) if p.boot_epoch == r.boot_epoch => (
                delta(&r.counters.cell3g, &p.counters.cell3g),
                delta(&r.counters.lte, &p.counters.lte),
                delta(&r.counters.wifi, &p.counters.wifi),
                app_deltas(&r, Some(p)),
            ),
            Some(_) => {
                stats.reboots += 1;
                (r.counters.cell3g, r.counters.lte, r.counters.wifi, app_deltas(&r, None))
            }
            None => (r.counters.cell3g, r.counters.lte, r.counters.wifi, app_deltas(&r, None)),
        };

        // iOS-update detection: the first version transition across
        // consecutive folded records. The batch cleaner finds it with a
        // lookahead pass; online it surfaces only *now*, so rows already
        // appended on the update day (and day + 1) are tombstoned
        // retroactively and recounted as update-day removals.
        if lane.update_day.is_none() {
            if let Some(p) = &lane.prev {
                if p.os_version < OsVersion::IOS_8_2 && r.os_version >= OsVersion::IOS_8_2 {
                    let day = r.time.day();
                    lane.update_day = Some(day);
                    if opts.clean.remove_update_days {
                        let killed = builder.tombstone_update_day(r.device, day);
                        stats.update_days_removed += killed;
                        stats.bins_out -= killed;
                    }
                }
            }
        }

        debug_assert!(
            lane.folded_seqs.last().is_none_or(|&s| s < r.seq),
            "folds must advance in sequence order"
        );
        lane.folded_seqs.push(r.seq);
        stats.folded += 1;
        // `prev` advances over *every* folded record, filtered or not,
        // exactly as the batch cleaner's does.
        lane.prev = Some(r.clone());

        if opts.clean.remove_tethering && r.tethering {
            stats.tethering_removed += 1;
            return;
        }
        if opts.clean.remove_update_days {
            if let Some(day) = lane.update_day {
                if r.time.day() == day || r.time.day() == day + 1 {
                    stats.update_days_removed += 1;
                    return;
                }
            }
        }

        builder.append(LiveRow {
            device: r.device,
            time: r.time,
            rx_3g: d3g.rx_bytes,
            tx_3g: d3g.tx_bytes,
            rx_lte: dlte.rx_bytes,
            tx_lte: dlte.tx_bytes,
            rx_wifi: dwifi.rx_bytes,
            tx_wifi: dwifi.tx_bytes,
            wifi: r.wifi,
            scan: r.scan,
            apps: dapps,
            geo: r.geo,
            os_version: r.os_version,
        });
        stats.bins_out += 1;
    }

    fn compact(&mut self) {
        let t0 = Instant::now();
        self.snapshot = Arc::new(self.builder.compact());
        self.stats.compact_nanos += t0.elapsed().as_nanos() as u64;
        self.stats.compactions = self.builder.compactions();
    }
}

/// Counter delta clamped at zero, exactly as the batch cleaner computes it.
fn delta(now: &TrafficCounters, before: &TrafficCounters) -> TrafficCounters {
    now.delta_since(before).unwrap_or_default()
}

/// Per-app deltas, exactly as the batch cleaner computes them.
fn app_deltas(r: &Record, prev: Option<&Record>) -> Vec<AppBin> {
    let mut out = Vec::new();
    for app in &r.apps {
        let base = prev
            .and_then(|p| p.apps.iter().find(|a| a.category == app.category))
            .map(|a| a.counters)
            .unwrap_or_default();
        let d = delta(&app.counters, &base);
        if d.rx_bytes > 0 || d.tx_bytes > 0 {
            out.push(AppBin { category: app.category, rx_bytes: d.rx_bytes, tx_bytes: d.tx_bytes });
        }
    }
    out
}

/// The convergence reference: a batch clean over `records` minus the late
/// keys the engine refused. The live snapshot must equal this exactly.
pub fn batch_reference(
    meta: CampaignMeta,
    devices: Vec<DeviceInfo>,
    records: &[Record],
    late: &HashSet<(DeviceId, u32)>,
    opts: CleanOptions,
) -> (Dataset, CleanStats) {
    if late.is_empty() {
        return clean(meta, devices, records, opts);
    }
    let filtered: Vec<Record> =
        records.iter().filter(|r| !late.contains(&(r.device, r.seq))).cloned().collect();
    clean(meta, devices, &filtered, opts)
}

/// Assert bit-identity between a finished live run and the batch pipeline
/// over the same records: dataset (bins, AP table, devices, meta), derived
/// index and columns, and the cleaning counters. Returns the batch
/// [`CleanStats`] on success and a description of the first divergence
/// otherwise.
pub fn check_convergence(
    fin: &FinishedLive,
    records: &[Record],
    opts: CleanOptions,
) -> Result<CleanStats, String> {
    let live = &fin.snapshot;
    let (ds, stats) =
        batch_reference(live.ds.meta.clone(), live.ds.devices.clone(), records, &fin.late, opts);
    if live.ds.bins.len() != ds.bins.len() {
        return Err(format!(
            "bin count diverged: live {} vs batch {}",
            live.ds.bins.len(),
            ds.bins.len()
        ));
    }
    if let Some(i) = (0..ds.bins.len()).find(|&i| live.ds.bins[i] != ds.bins[i]) {
        return Err(format!(
            "bin {i} diverged: live {:?} vs batch {:?}",
            live.ds.bins[i], ds.bins[i]
        ));
    }
    if live.ds.aps != ds.aps {
        return Err(format!(
            "AP table diverged: live {} entries vs batch {}",
            live.ds.aps.len(),
            ds.aps.len()
        ));
    }
    if live.ds != ds {
        return Err("dataset metadata diverged".into());
    }
    let index = DatasetIndex::build(&ds);
    if live.index != index {
        return Err("bin-range index diverged".into());
    }
    let cols = DatasetColumns::build(&ds);
    if live.cols != cols {
        return Err("columnar view diverged".into());
    }
    let live_stats = fin.stats.as_clean_stats();
    if live_stats != stats {
        return Err(format!("clean stats diverged: live {live_stats:?} vs batch {stats:?}"));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobitrace_model::{CellId, CounterSnapshot, ScanSummary, WifiState, Year};

    fn meta(days: u32) -> CampaignMeta {
        CampaignMeta { year: Year::Y2015, start: Year::Y2015.campaign_start(), days, seed: 0 }
    }

    fn counters(cum: u64) -> CounterSnapshot {
        CounterSnapshot {
            cell3g: TrafficCounters::default(),
            lte: TrafficCounters {
                rx_bytes: cum * 2,
                tx_bytes: cum / 2,
                rx_pkts: cum / 450,
                tx_pkts: cum / 1800,
            },
            wifi: TrafficCounters {
                rx_bytes: cum,
                tx_bytes: cum / 4,
                rx_pkts: cum / 900,
                tx_pkts: cum / 3600,
            },
        }
    }

    /// Sample time derives from `seq`, so seq order and time order agree —
    /// the co-monotonicity the real agent guarantees.
    fn rec(dev: u32, seq: u32, cum: u64) -> Record {
        Record {
            device: DeviceId(dev),
            os: Os::Ios,
            seq,
            time: SimTime::from_day_bin(seq / 144, seq % 144),
            boot_epoch: 0,
            counters: counters(cum),
            wifi: WifiState::OnUnassociated,
            scan: ScanSummary::default(),
            apps: vec![],
            geo: CellId::new(1, 2),
            battery_pct: 77,
            tethering: false,
            os_version: OsVersion::new(8, 1),
        }
    }

    fn batch(records: Vec<Record>) -> TapBatch {
        TapBatch { shard: 0, replay: false, records }
    }

    fn sorted(mut records: Vec<Record>) -> Vec<Record> {
        records.sort_by_key(|r| (r.device, r.seq));
        records
    }

    fn finish_and_check(engine: LiveEngine, records: &[Record]) -> (FinishedLive, CleanStats) {
        let opts = engine.opts.clean;
        let fin = engine.finish();
        let stats = match check_convergence(&fin, records, opts) {
            Ok(s) => s,
            Err(why) => panic!("diverged: {why}"),
        };
        (fin, stats)
    }

    #[test]
    fn interleaved_devices_converge() {
        let mut engine = LiveEngine::new(meta(2), 3, LiveOptions::default());
        let mut all = Vec::new();
        for seq in 0..10u32 {
            for dev in [2u32, 0] {
                let r = rec(dev, seq, u64::from(seq) * 1_000 + u64::from(dev));
                engine.ingest_batch(&batch(vec![r.clone()]));
                all.push(r);
            }
        }
        let (fin, stats) = finish_and_check(engine, &sorted(all));
        assert_eq!(stats.records_in, 20);
        assert_eq!(fin.stats.late_dropped, 0);
        assert_eq!(fin.stats.dup_dropped, 0);
        // Device 1 never reported; its range must still resolve.
        assert!(fin.snapshot.index.device_range(DeviceId(1)).is_empty());
    }

    #[test]
    fn duplicates_and_replays_are_dropped() {
        let mut engine = LiveEngine::new(meta(1), 1, LiveOptions::default());
        let records: Vec<Record> = (0..5u32).map(|s| rec(0, s, u64::from(s) * 100)).collect();
        engine.ingest_batch(&batch(records.clone()));
        engine.ingest_batch(&batch(records.clone()));
        // A whole-store replay after a simulated crash re-offers everything.
        engine.ingest_batch(&TapBatch { shard: 0, replay: true, records: records.clone() });
        let (fin, stats) = finish_and_check(engine, &records);
        assert_eq!(fin.stats.dup_dropped, 10);
        assert_eq!(fin.stats.replay_batches, 1);
        assert_eq!(stats.records_in, 5);
    }

    #[test]
    fn late_record_is_excluded_from_both_sides() {
        let mut engine = LiveEngine::new(meta(10), 1, LiveOptions::default());
        // seq 0 (minute 0) and seq 200 (minute 2000) arrive; seq 1
        // (minute 10) then shows up far behind the watermark.
        let r0 = rec(0, 0, 100);
        let r200 = rec(0, 200, 900_000);
        let r1 = rec(0, 1, 500);
        engine.ingest_batch(&batch(vec![r0.clone(), r200.clone()]));
        engine.ingest_batch(&batch(vec![r1.clone()]));
        assert_eq!(engine.stats().late_dropped, 1);
        // The reference gets ALL server records; convergence must hold
        // because the checker excludes the engine's late keys.
        let (fin, stats) = finish_and_check(engine, &sorted(vec![r0, r200, r1]));
        assert!(fin.late.contains(&(DeviceId(0), 1)));
        // Batch over {0, 200}: one gap of width 199 (seq 1 counts as lost).
        assert_eq!(stats.gaps, 1);
        assert_eq!(stats.missing_records, 199);
        assert_eq!(stats.bins_out, 2);
    }

    #[test]
    fn reboots_gaps_and_leading_loss_match_batch() {
        let mut engine = LiveEngine::new(meta(1), 1, LiveOptions::default());
        // First delivered record is seq 3 (leading gap of 3); seq 5 skips
        // seq 4; seq 6 reboots (epoch bump, counters restart).
        let mut r6 = rec(0, 6, 700);
        r6.boot_epoch = 1;
        let records = vec![rec(0, 3, 3_000), rec(0, 5, 5_000), r6];
        engine.ingest_batch(&batch(records.clone()));
        let (fin, stats) = finish_and_check(engine, &records);
        assert_eq!(stats.gaps, 2);
        assert_eq!(stats.missing_records, 4);
        assert_eq!(stats.reboots, 1);
        // Reboot bin carries the whole since-boot volume.
        assert_eq!(fin.snapshot.ds.bins[2].rx_wifi, 700);
        // Gap bin folds the lost record's volume into its delta.
        assert_eq!(fin.snapshot.ds.bins[1].rx_wifi, 2_000);
    }

    #[test]
    fn tethering_and_retroactive_update_day_converge() {
        let mut engine = LiveEngine::new(meta(4), 1, LiveOptions::default());
        let mut records = Vec::new();
        // Day 0 on iOS 8.1 (one bin tethered); the 8.2 transition lands
        // mid-day-1, AFTER earlier day-1 rows were already folded and
        // appended — exercising the retroactive tombstone; day 2 falls in
        // the update shadow; day 3 survives.
        for seq in 0..(4 * 144u32) {
            let mut r = rec(0, seq, u64::from(seq) * 50);
            if seq == 30 {
                r.tethering = true;
            }
            if seq >= 144 + 72 {
                r.os_version = OsVersion::IOS_8_2;
            }
            records.push(r);
        }
        // Feed in small batches so day-1 rows land before the transition.
        for chunk in records.chunks(16) {
            engine.ingest_batch(&batch(chunk.to_vec()));
        }
        let (fin, stats) = finish_and_check(engine, &records);
        assert_eq!(stats.tethering_removed, 1);
        // Days 1 and 2 removed entirely: 288 records.
        assert_eq!(stats.update_days_removed, 288);
        let days: std::collections::HashSet<u32> =
            fin.snapshot.ds.bins.iter().map(|b| b.time.day()).collect();
        assert_eq!(days, [0u32, 3].into_iter().collect());
    }

    #[test]
    fn update_days_kept_when_option_disabled() {
        let opts = LiveOptions {
            clean: CleanOptions { remove_update_days: false, ..CleanOptions::default() },
            ..LiveOptions::default()
        };
        let mut engine = LiveEngine::new(meta(2), 1, opts);
        let records: Vec<Record> = (0..288u32)
            .map(|seq| {
                let mut r = rec(0, seq, u64::from(seq) * 50);
                if seq >= 144 {
                    r.os_version = OsVersion::IOS_8_2;
                }
                r
            })
            .collect();
        engine.ingest_batch(&batch(records.clone()));
        let (fin, stats) = finish_and_check(engine, &records);
        assert_eq!(stats.update_days_removed, 0);
        assert_eq!(fin.snapshot.ds.bins.len(), 288);
    }

    #[test]
    fn snapshots_are_arc_clones_between_compactions() {
        let mut engine = LiveEngine::new(meta(1), 1, LiveOptions::default());
        let before = engine.snapshot();
        engine.ingest_batch(&batch(vec![rec(0, 0, 10)]));
        // No compaction happened (tiny tail): same published snapshot.
        assert!(Arc::ptr_eq(&before, &engine.snapshot()));
        let records = vec![rec(0, 0, 10)];
        let (fin, _) = finish_and_check(engine, &records);
        assert_eq!(fin.snapshot.len(), 1);
    }

    #[test]
    fn app_deltas_replicate_batch_rules() {
        use mobitrace_model::{AppCategory, AppCounter};
        let mut engine = LiveEngine::new(meta(1), 1, LiveOptions::default());
        let mut records = Vec::new();
        for seq in 0..4u32 {
            let mut r = rec(0, seq, u64::from(seq) * 1_000);
            r.os = Os::Android;
            r.apps = vec![AppCounter {
                category: AppCategory::Video,
                counters: TrafficCounters {
                    rx_bytes: u64::from(seq) * 5_000,
                    tx_bytes: u64::from(seq) * 500,
                    rx_pkts: u64::from(seq) * 6,
                    tx_pkts: u64::from(seq),
                },
            }];
            records.push(r);
        }
        engine.ingest_batch(&batch(records.clone()));
        let (fin, _) = finish_and_check(engine, &records);
        // Seq 0 has zero app delta → no AppBin; the rest carry 5 kB each.
        assert!(fin.snapshot.ds.bins[0].apps.is_empty());
        assert_eq!(fin.snapshot.ds.bins[1].apps[0].rx_bytes, 5_000);
    }
}
