//! Cohort-multiplexed live engines.
//!
//! The fleet frontend runs one collection server per cohort; when live
//! analysis rides along, each cohort gets its own [`LiveEngine`] fed
//! from its own server's [`IngestTap`]. [`EngineGroup`] owns that row of
//! engines and routes tap batches by cohort index.
//!
//! Every engine is built over the *full* fleet device table: lanes are
//! indexed by device, and a cohort's engine simply never sees records
//! for devices routed elsewhere, so its lanes for them stay empty. That
//! keeps routing out of the engine entirely — the cohort router already
//! decided placement at the server door, and whatever batches a cohort's
//! tap publishes belong to it by construction.
//!
//! The convergence contract is inherited per cohort: each engine's final
//! snapshot is bit-identical to the batch pipeline run over that
//! cohort's records alone ([`check_convergence`] per engine).
//!
//! [`IngestTap`]: mobitrace_collector::IngestTap
//! [`check_convergence`]: crate::check_convergence

use mobitrace_collector::TapBatch;
use mobitrace_model::{CampaignMeta, DeviceInfo};

use crate::engine::{FinishedLive, LiveEngine, LiveOptions};

/// A row of per-cohort live engines (see module docs).
pub struct EngineGroup {
    engines: Vec<LiveEngine>,
}

impl EngineGroup {
    /// One engine per cohort, each over the full `devices` table.
    pub fn with_devices(
        meta: CampaignMeta,
        devices: Vec<DeviceInfo>,
        cohorts: usize,
        opts: LiveOptions,
    ) -> EngineGroup {
        assert!(cohorts >= 1, "a group needs at least one engine");
        let engines = (0..cohorts)
            .map(|_| LiveEngine::with_devices(meta.clone(), devices.clone(), opts))
            .collect();
        EngineGroup { engines }
    }

    /// One engine per cohort over `n_devices` placeholder devices
    /// (metadata installed later via [`install_devices`]
    /// (EngineGroup::install_devices), as single-engine flows do).
    pub fn new(
        meta: CampaignMeta,
        n_devices: usize,
        cohorts: usize,
        opts: LiveOptions,
    ) -> EngineGroup {
        EngineGroup::with_devices(
            meta,
            crate::engine::placeholder_devices(n_devices),
            cohorts,
            opts,
        )
    }

    /// Engines in the group.
    pub fn n_cohorts(&self) -> usize {
        self.engines.len()
    }

    /// Direct access to one cohort's engine.
    pub fn engine_mut(&mut self, cohort: usize) -> &mut LiveEngine {
        &mut self.engines[cohort]
    }

    /// Route one tap batch to its cohort's engine.
    pub fn ingest_batch(&mut self, cohort: usize, batch: &TapBatch) {
        self.engines[cohort].ingest_batch(batch);
    }

    /// Install the real device table into every engine.
    pub fn install_devices(&mut self, devices: Vec<DeviceInfo>) {
        for engine in &mut self.engines {
            engine.install_devices(devices.clone());
        }
    }

    /// Finish every engine, in cohort order.
    pub fn finish(self) -> Vec<FinishedLive> {
        self.engines.into_iter().map(LiveEngine::finish).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::check_convergence;
    use mobitrace_collector::CleanOptions;
    use mobitrace_model::{
        CellId, CounterSnapshot, DeviceId, Os, OsVersion, Record, ScanSummary, SimTime, WifiState,
        Year,
    };

    fn meta() -> CampaignMeta {
        CampaignMeta { year: Year::Y2015, start: Year::Y2015.campaign_start(), days: 2, seed: 0 }
    }

    fn rec(device: u32, seq: u32) -> Record {
        Record {
            device: DeviceId(device),
            seq,
            time: SimTime::from_minutes(seq * 10),
            boot_epoch: 0,
            os: Os::Android,
            os_version: OsVersion::new(4, 4),
            counters: CounterSnapshot::default(),
            wifi: WifiState::Off,
            scan: ScanSummary::default(),
            apps: Vec::new(),
            geo: CellId::new(1, 1),
            battery_pct: 90,
            tethering: false,
        }
    }

    /// Two cohort engines over one fleet device table: each converges to
    /// the batch reference over its own cohort's records, and neither
    /// sees the other's devices.
    #[test]
    fn cohort_engines_converge_independently() {
        let n_devices = 6usize;
        // Even devices → cohort 0, odd → cohort 1 (any stable split works;
        // the real router is exercised in the fleet crate).
        let cohort_of = |d: u32| (d % 2) as usize;
        let opts = LiveOptions {
            clean: CleanOptions { remove_update_days: false, ..CleanOptions::default() },
            ..LiveOptions::default()
        };
        let mut group = EngineGroup::new(meta(), n_devices, 2, opts);
        assert_eq!(group.n_cohorts(), 2);

        let mut per_cohort: Vec<Vec<Record>> = vec![Vec::new(), Vec::new()];
        for d in 0..n_devices as u32 {
            for s in 0..40u32 {
                per_cohort[cohort_of(d)].push(rec(d, s));
            }
        }
        // Interleave deliveries across cohorts in small tap batches.
        for k in 0..40usize {
            for (c, records) in per_cohort.iter().enumerate() {
                let chunk: Vec<Record> =
                    records.iter().filter(|r| r.seq as usize == k).cloned().collect();
                group.ingest_batch(c, &TapBatch { shard: k % 4, replay: false, records: chunk });
            }
        }
        let finished = group.finish();
        assert_eq!(finished.len(), 2);
        for (c, fin) in finished.iter().enumerate() {
            let stats = check_convergence(fin, &per_cohort[c], opts.clean)
                .unwrap_or_else(|e| panic!("cohort {c} diverged: {e}"));
            assert_eq!(stats.records_in, per_cohort[c].len() as u64);
            // The other cohort's devices contributed nothing here.
            assert_eq!(fin.stats.folded, per_cohort[c].len() as u64);
        }
    }
}
