//! Streaming snapshot persistence: the live engine as pool writer.
//!
//! Each compaction publishes a fresh [`LiveSnapshot`]; a
//! [`SnapshotPoolSink`] appends every published generation to one
//! `.mtpool` file as its own dataset stream and commits, so concurrent
//! readers (other processes mmap-ing the same file) always see the
//! latest *complete* generation — the pool's atomic slot flip is the
//! publication barrier. This is the "one serialized writer, many mmap
//! readers" half of the pool's concurrency story; the sink holds the
//! writer lock for its lifetime.

use mobitrace_model::LiveSnapshot;
use mobitrace_pool::{PoolError, PoolReader, PoolWriter};
use std::path::Path;

/// Appends live snapshot generations to a pool file.
pub struct SnapshotPoolSink {
    writer: PoolWriter,
    /// Next generation's stream id.
    next: u16,
    /// First append failure, if any; later appends are skipped so a
    /// mid-run disk problem degrades persistence, not the analysis run.
    error: Option<String>,
}

/// What a sink did over a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSpoolStats {
    /// Snapshot generations committed.
    pub generations: u64,
    /// Last published pool epoch (0 when nothing was committed).
    pub epoch: u64,
    /// First append error, if persistence degraded mid-run.
    pub error: Option<String>,
}

impl SnapshotPoolSink {
    /// Create (truncate) the pool at `path` and take the writer lock.
    pub fn create(path: &Path) -> Result<SnapshotPoolSink, PoolError> {
        Ok(SnapshotPoolSink { writer: PoolWriter::create(path)?, next: 0, error: None })
    }

    /// Append one snapshot as the next generation and publish it.
    /// After a failure this becomes a no-op (the error is kept).
    pub fn append(&mut self, snap: &LiveSnapshot) {
        if self.error.is_some() {
            return;
        }
        let stream = self.next;
        let result = self
            .writer
            .append_dataset(stream, &snap.ds, &snap.index, &snap.cols)
            .and_then(|()| self.writer.commit());
        match result {
            Ok(_) => self.next += 1,
            Err(e) => self.error = Some(format!("generation {stream}: {e}")),
        }
    }

    /// Commit summary for the run report.
    pub fn stats(&self) -> PoolSpoolStats {
        PoolSpoolStats {
            generations: u64::from(self.next),
            epoch: self.writer.epoch(),
            error: self.error.clone(),
        }
    }
}

/// Open `path` and decode its newest committed generation, if any —
/// what a concurrent monitoring process does while the engine appends.
pub fn latest_generation(path: &Path) -> Result<Option<mobitrace_pool::PoolDataset>, PoolError> {
    let r = PoolReader::open(path)?;
    match r.dataset_streams().last() {
        Some(&stream) => Ok(Some(r.decode_dataset(stream)?)),
        None => Ok(None),
    }
}
