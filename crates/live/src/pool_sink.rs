//! Streaming snapshot persistence: the live engine as pool writer.
//!
//! Each compaction publishes a fresh [`LiveSnapshot`]; a
//! [`SnapshotPoolSink`] appends every published generation to one
//! `.mtpool` file as its own dataset stream and commits, so concurrent
//! readers (other processes mmap-ing the same file) always see the
//! latest *complete* generation — the pool's atomic slot flip is the
//! publication barrier. This is the "one serialized writer, many mmap
//! readers" half of the pool's concurrency story; the sink holds the
//! writer lock for its lifetime.
//!
//! Two costs of this shape are deliberate and worth knowing: every
//! generation spools the *full* current dataset (not a delta), so the
//! file grows roughly quadratically in the number of generations over a
//! long run — size the compaction cadence accordingly — and generation
//! stream ids are `u16`, so a sink persists at most 65 536 generations;
//! past that it degrades exactly like a disk error (the error is
//! reported in [`PoolSpoolStats`], earlier generations stay readable).

use mobitrace_model::LiveSnapshot;
use mobitrace_pool::{PoolError, PoolReader, PoolWriter};
use std::path::Path;

/// Appends live snapshot generations to a pool file.
pub struct SnapshotPoolSink {
    writer: PoolWriter,
    /// Next generation's stream id.
    next: u16,
    /// Generations committed (tracked separately from `next` so the
    /// count stays right when the id space is exhausted).
    generations: u64,
    /// First append failure, if any; later appends are skipped so a
    /// mid-run disk problem degrades persistence, not the analysis run.
    error: Option<String>,
}

/// What a sink did over a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolSpoolStats {
    /// Snapshot generations committed.
    pub generations: u64,
    /// Last published pool epoch (0 when nothing was committed).
    pub epoch: u64,
    /// First append error, if persistence degraded mid-run.
    pub error: Option<String>,
}

impl SnapshotPoolSink {
    /// Create (truncate) the pool at `path` and take the writer lock.
    /// `path` must not be an existing pool that readers currently have
    /// mapped (see [`PoolWriter::create`]); the sink's readers are
    /// expected to open the file only after the sink exists.
    pub fn create(path: &Path) -> Result<SnapshotPoolSink, PoolError> {
        Ok(SnapshotPoolSink {
            writer: PoolWriter::create(path)?,
            next: 0,
            generations: 0,
            error: None,
        })
    }

    /// Append one snapshot as the next generation and publish it.
    /// After a failure this becomes a no-op (the error is kept).
    /// Exhausting the `u16` generation id space is treated like any
    /// other persistence failure: the sink stops appending cleanly and
    /// reports it, instead of overflowing the counter.
    pub fn append(&mut self, snap: &LiveSnapshot) {
        if self.error.is_some() {
            return;
        }
        let stream = self.next;
        let result = self
            .writer
            .append_dataset(stream, &snap.ds, &snap.index, &snap.cols)
            .and_then(|()| self.writer.commit());
        match result {
            Ok(_) => {
                self.generations += 1;
                match self.next.checked_add(1) {
                    Some(n) => self.next = n,
                    None => {
                        self.error = Some(format!(
                            "generation stream ids exhausted at {stream}; \
                             later snapshots are not persisted"
                        ));
                    }
                }
            }
            Err(e) => self.error = Some(format!("generation {stream}: {e}")),
        }
    }

    /// Commit summary for the run report.
    pub fn stats(&self) -> PoolSpoolStats {
        PoolSpoolStats {
            generations: self.generations,
            epoch: self.writer.epoch(),
            error: self.error.clone(),
        }
    }
}

/// Open `path` and decode its newest committed generation, if any —
/// what a concurrent monitoring process does while the engine appends.
pub fn latest_generation(path: &Path) -> Result<Option<mobitrace_pool::PoolDataset>, PoolError> {
    let r = PoolReader::open(path)?;
    match r.dataset_streams().last() {
        Some(&stream) => Ok(Some(r.decode_dataset(stream)?)),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobitrace_model::{CampaignMeta, Dataset, DatasetColumns, DatasetIndex, Year};

    fn snapshot() -> LiveSnapshot {
        let meta = CampaignMeta {
            year: Year::Y2013,
            start: Year::Y2013.campaign_start(),
            days: 1,
            seed: 0,
        };
        let empty = Dataset { meta, devices: vec![], aps: vec![], bins: vec![] };
        LiveSnapshot {
            index: DatasetIndex::build(&empty),
            cols: DatasetColumns::build(&empty),
            ds: empty,
            compactions: 0,
        }
    }

    /// Exhausting the `u16` generation id space must degrade like a disk
    /// error — error recorded, appends become no-ops, everything already
    /// committed stays readable — never an arithmetic overflow.
    #[test]
    fn generation_id_exhaustion_degrades_cleanly() {
        let dir = std::env::temp_dir().join(format!(
            "mtlive-sink-exhaust-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.mtpool");
        let mut sink = SnapshotPoolSink::create(&path).unwrap();
        // Jump straight to the last usable id; actually spooling 65 536
        // full generations is the quadratic-growth caveat in the module
        // docs, not a unit test.
        sink.next = u16::MAX;
        sink.generations = u64::from(u16::MAX);
        let snap = snapshot();
        sink.append(&snap);
        let stats = sink.stats();
        assert_eq!(stats.generations, u64::from(u16::MAX) + 1);
        assert!(
            stats.error.as_deref().unwrap_or("").contains("exhausted"),
            "expected exhaustion error, got {:?}",
            stats.error
        );
        // Further appends are clean no-ops.
        sink.append(&snap);
        assert_eq!(sink.stats().generations, u64::from(u16::MAX) + 1);
        drop(sink);
        // The final generation was committed and is the newest readable one.
        let latest = latest_generation(&path).unwrap().expect("generation present");
        assert_eq!(latest.ds, snap.ds);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
