//! # mobitrace-live
//!
//! Streaming analysis engine behind the sharded
//! [`CollectionServer`](mobitrace_collector::CollectionServer): an
//! [ingest-tap](mobitrace_collector::IngestTap) consumer that cleans
//! records *online* (watermarked lateness, dedup, tethering and
//! iOS-update-day rules) and incrementally maintains the analysis-ready
//! dataset — bins, AP table, bin-range index and columnar view — behind
//! cheap copy-on-write snapshots.
//!
//! The convergence contract is exact: when the stream ends, the live
//! snapshot is **bit-identical** to the batch pipeline's output over the
//! same records (minus the late arrivals the engine refused, which are
//! excluded from the reference too). [`check_convergence`] asserts it;
//! `mobitrace live` runs a whole simulated campaign through the engine
//! and fails loudly if the identity ever breaks.
//!
//! - [`engine`]: the incremental cleaner and dataset builder.
//! - [`campaign`]: a campaign runner that taps the server mid-flight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod engine;
pub mod group;
pub mod pool_sink;

pub use campaign::{
    run_live_campaign, run_live_campaign_observed, run_live_campaign_to_pool, LiveRunReport,
    SnapshotMetric, SnapshotObserver,
};
pub use engine::{
    batch_reference, check_convergence, placeholder_devices, FinishedLive, LiveEngine, LiveOptions,
    LiveStats,
};
pub use group::EngineGroup;
pub use pool_sink::{latest_generation, PoolSpoolStats, SnapshotPoolSink};
