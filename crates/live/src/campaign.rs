//! Run a simulated campaign through the live engine.
//!
//! [`run_live_campaign`] wires the pieces end to end: it starts a normal
//! simulated campaign via [`mobitrace_sim::run_campaign_raw`], attaches an
//! [ingest tap](mobitrace_collector::IngestTap) to the collection server
//! the moment it exists, and drains the tap from a dedicated thread into a
//! [`LiveEngine`] *while the campaign is still uploading*. When the
//! campaign ends the engine folds its remaining pending records, the real
//! device table (survey + ground truth, known only after the device loop)
//! replaces the placeholders, and the final snapshot is checked for bit
//! identity against a batch clean of the very records the server retained
//! — the same convergence contract the chaos harness proves for the batch
//! pipeline, so chaos schedules and live analysis compose.

use crate::engine::{check_convergence, FinishedLive, LiveEngine, LiveOptions, LiveStats};
use crate::pool_sink::{PoolSpoolStats, SnapshotPoolSink};
use mobitrace_collector::CleanStats;
use mobitrace_model::LiveSnapshot;
use mobitrace_pool::PoolError;
use mobitrace_sim::{run_campaign_raw, CampaignConfig, RawCampaign};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Callback invoked on every snapshot the engine publishes: each mid-run
/// compaction (from the drain thread) and the finished snapshot (from the
/// caller's thread, after the real device table is installed). The `Send`
/// bound is what lets the drain thread carry it; callers that stream
/// results share the output sink behind a mutex.
pub type SnapshotObserver = Box<dyn FnMut(&Arc<LiveSnapshot>, &LiveStats) + Send>;

/// One published snapshot observed during the run: how much the engine had
/// folded and what the incremental maintenance had cost by then. The cost
/// counters are cumulative; deltas between consecutive metrics give the
/// per-snapshot cost, which stays proportional to the rows folded since
/// the last snapshot — not to the dataset size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMetric {
    /// Compactions done when the snapshot was taken.
    pub compactions: u64,
    /// Bin rows in the published snapshot.
    pub bins: usize,
    /// Records folded so far.
    pub folded: u64,
    /// Tap batches consumed so far.
    pub batches: u64,
    /// Cumulative nanoseconds spent folding.
    pub fold_nanos: u64,
    /// Cumulative nanoseconds spent compacting.
    pub compact_nanos: u64,
}

/// Everything a live campaign run produces.
#[derive(Debug)]
pub struct LiveRunReport {
    /// The finished engine output: final snapshot, counters, late keys.
    pub finished: FinishedLive,
    /// The campaign as the batch path sees it (records, device table,
    /// transport/ingest counters).
    pub raw: RawCampaign,
    /// Periodic snapshot metrics, one per compaction observed mid-run.
    pub snapshots: Vec<SnapshotMetric>,
    /// `None` when the final snapshot is bit-identical to the batch
    /// reference; otherwise a description of the first divergence.
    pub divergence: Option<String>,
    /// The batch reference's cleaning stats (present when converged).
    pub batch_stats: Option<CleanStats>,
    /// Records published through the tap (replays included).
    pub tap_published: u64,
    /// Records that overflowed a tap channel into the spill buffer.
    pub tap_overflow: u64,
    /// Wall-clock seconds for the whole run (campaign + live engine).
    pub wall_s: f64,
}

impl LiveRunReport {
    /// Whether the live snapshot matched the batch reference exactly.
    pub fn converged(&self) -> bool {
        self.divergence.is_none()
    }
}

/// How long the drainer sleeps when the tap has nothing for it.
const DRAIN_IDLE: Duration = Duration::from_millis(1);

/// Run one campaign with the live engine attached; see the
/// [module docs](self). Deterministic in its *products*: the final
/// snapshot and the convergence verdict depend only on the config, never
/// on drain timing (timing moves work between batches, not records
/// between outcomes).
pub fn run_live_campaign(config: &CampaignConfig, opts: LiveOptions) -> LiveRunReport {
    run_live_campaign_inner(config, opts, None, None).0
}

/// [`run_live_campaign`], plus a [`SnapshotObserver`] invoked on every
/// published snapshot generation — the hook `mobitrace serve` uses to
/// re-evaluate registered queries mid-campaign without stopping ingest.
pub fn run_live_campaign_observed(
    config: &CampaignConfig,
    opts: LiveOptions,
    observer: SnapshotObserver,
) -> LiveRunReport {
    run_live_campaign_inner(config, opts, None, Some(observer)).0
}

/// [`run_live_campaign`], plus streaming persistence: every snapshot the
/// engine publishes mid-run is appended to the pool at `path` as its own
/// generation and committed, so other processes can mmap the file and
/// analyze the latest complete generation while the campaign is still
/// uploading. Creating the pool (taking the writer lock) can fail; append
/// failures after that degrade persistence only and are reported in the
/// returned [`PoolSpoolStats`].
pub fn run_live_campaign_to_pool(
    config: &CampaignConfig,
    opts: LiveOptions,
    path: &Path,
) -> Result<(LiveRunReport, PoolSpoolStats), PoolError> {
    let sink = SnapshotPoolSink::create(path)?;
    let (report, stats) = run_live_campaign_inner(config, opts, Some(sink), None);
    Ok((report, stats.expect("sink passed in is returned")))
}

fn run_live_campaign_inner(
    config: &CampaignConfig,
    opts: LiveOptions,
    mut sink: Option<SnapshotPoolSink>,
    mut observer: Option<SnapshotObserver>,
) -> (LiveRunReport, Option<PoolSpoolStats>) {
    let t0 = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    type WorkerOut =
        (LiveEngine, Vec<SnapshotMetric>, Option<SnapshotPoolSink>, Option<SnapshotObserver>);
    let mut worker: Option<std::thread::JoinHandle<WorkerOut>> = None;
    let mut tap_handle = None;

    let raw = run_campaign_raw(config, |server| {
        let tap = server.attach_tap();
        tap_handle = Some(Arc::clone(&tap));
        let stop = Arc::clone(&stop);
        let mut engine = LiveEngine::new(
            mobitrace_model::CampaignMeta {
                year: config.year,
                start: config.year.campaign_start(),
                days: config.days,
                seed: config.seed,
            },
            config.n_users,
            opts,
        );
        let mut sink = sink.take();
        let mut observer = observer.take();
        worker = Some(std::thread::spawn(move || {
            let mut batches = Vec::new();
            let mut metrics = Vec::new();
            let mut seen_compactions = 0u64;
            loop {
                // Read the stop flag *before* draining: everything
                // published before the flag was raised is caught by this
                // final drain, so no batch is ever left behind.
                let stopping = stop.load(Ordering::Acquire);
                tap.drain_into(&mut batches);
                let idle = batches.is_empty();
                for batch in batches.drain(..) {
                    engine.ingest_batch(&batch);
                }
                let s = engine.stats();
                if s.compactions > seen_compactions {
                    seen_compactions = s.compactions;
                    let snap = engine.snapshot();
                    if let Some(sink) = sink.as_mut() {
                        sink.append(&snap);
                    }
                    if let Some(obs) = observer.as_mut() {
                        obs(&snap, &s);
                    }
                    metrics.push(SnapshotMetric {
                        compactions: s.compactions,
                        bins: snap.len(),
                        folded: s.folded,
                        batches: s.batches,
                        fold_nanos: s.fold_nanos,
                        compact_nanos: s.compact_nanos,
                    });
                }
                if stopping {
                    break;
                }
                if idle {
                    std::thread::sleep(DRAIN_IDLE);
                }
            }
            (engine, metrics, sink, observer)
        }));
    });

    // The campaign (and its last upload) is over; let the drainer finish.
    stop.store(true, Ordering::Release);
    let (mut engine, mut snapshots, mut sink, mut observer) =
        worker.expect("on_server hook ran").join().expect("live drain thread");
    let tap = tap_handle.expect("tap attached");

    // The real device table (survey answers, ground truth) exists only
    // now; swap it in before the final fold + compaction.
    engine.install_devices(raw.devices.clone());
    let finished = engine.finish();
    if let Some(s) = sink.as_mut() {
        s.append(&finished.snapshot);
    }
    if let Some(obs) = observer.as_mut() {
        obs(&finished.snapshot, &finished.stats);
    }
    snapshots.push(SnapshotMetric {
        compactions: finished.stats.compactions,
        bins: finished.snapshot.len(),
        folded: finished.stats.folded,
        batches: finished.stats.batches,
        fold_nanos: finished.stats.fold_nanos,
        compact_nanos: finished.stats.compact_nanos,
    });

    let (divergence, batch_stats) = match check_convergence(&finished, &raw.records, opts.clean) {
        Ok(stats) => (None, Some(stats)),
        Err(why) => (Some(why), None),
    };

    let report = LiveRunReport {
        finished,
        raw,
        snapshots,
        divergence,
        batch_stats,
        tap_published: tap.published(),
        tap_overflow: tap.overflow(),
        wall_s: t0.elapsed().as_secs_f64(),
    };
    (report, sink.map(|s| s.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> CampaignConfig {
        let mut cfg = CampaignConfig::scaled(mobitrace_model::Year::Y2015, 0.02);
        cfg.days = 3;
        cfg.seed = seed;
        cfg
    }

    #[test]
    fn live_campaign_converges() {
        let report = run_live_campaign(&tiny(21), LiveOptions::default());
        assert!(report.converged(), "diverged: {:?}", report.divergence);
        let stats = report.batch_stats.unwrap();
        assert!(stats.bins_out > 0);
        assert_eq!(report.finished.stats.bins_out, stats.bins_out);
        // The tap saw every record the server retained, exactly once (no
        // crashes in this campaign, so no replays).
        assert_eq!(report.tap_published, report.raw.records.len() as u64);
        assert_eq!(report.finished.stats.records_seen, report.tap_published);
        // Snapshots were published during the run, not just at the end.
        assert!(!report.snapshots.is_empty());
        // Ground truth made it into the live dataset's device table.
        assert!(report.finished.snapshot.ds.devices.iter().all(|d| d.truth.is_some()));
    }

    #[test]
    fn live_campaign_converges_under_chaos() {
        use mobitrace_collector::ChaosProfile;
        let mut cfg = tiny(22).with_chaos(ChaosProfile::flaky());
        cfg.tether_users = 0.0;
        let report = run_live_campaign(&cfg, LiveOptions::default());
        assert!(report.converged(), "diverged under chaos: {:?}", report.divergence);
        assert!(report.raw.net.chaos_failed > 0, "chaos did not bite");
    }

    #[test]
    fn live_pool_spool_serves_concurrent_readers_and_lands_on_final_snapshot() {
        let dir = std::env::temp_dir().join(format!(
            "mt-live-pool-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("live.mtpool");

        // A second "process": polls the pool while the writer appends.
        // Every successful open must decode cleanly (atomic publication);
        // opens may fail benignly before the file exists or mid-slot-flip
        // (the reader just retries), but a decode of a published
        // generation must never fail.
        let stop = Arc::new(AtomicBool::new(false));
        let rpath = path.clone();
        let rstop = Arc::clone(&stop);
        let reader = std::thread::spawn(move || {
            let mut decoded = 0u64;
            while !rstop.load(Ordering::Acquire) {
                if let Ok(Some(pd)) = crate::pool_sink::latest_generation(&rpath) {
                    assert_eq!(pd.ds.bins.len(), pd.cols.device.len());
                    decoded += 1;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            decoded
        });

        let (report, spool) =
            run_live_campaign_to_pool(&tiny(24), LiveOptions::default(), &path).unwrap();
        stop.store(true, Ordering::Release);
        let mid_run_decodes = reader.join().expect("reader thread");

        assert!(report.converged(), "diverged: {:?}", report.divergence);
        assert_eq!(spool.error, None, "spool degraded: {:?}", spool.error);
        // One generation per published snapshot metric (mid-run
        // compactions plus the final finished snapshot).
        assert_eq!(spool.generations, report.snapshots.len() as u64);
        assert!(spool.generations >= 1);
        assert!(spool.epoch >= spool.generations);

        // After the run, the newest generation is the finished snapshot,
        // bit-identical — ground truth device table included.
        let pd = crate::pool_sink::latest_generation(&path).unwrap().expect("final generation");
        assert_eq!(pd.ds, report.finished.snapshot.ds);
        assert_eq!(pd.index, report.finished.snapshot.index);
        assert_eq!(pd.cols, report.finished.snapshot.cols);

        // The mid-run reader is timing-dependent; just surface the count
        // so a regression to "readers always blocked" would be visible.
        let _ = mid_run_decodes;
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_products_are_drain_timing_independent() {
        // Two runs of the same config: the final snapshot must be
        // bit-identical even though drain timing (batch boundaries,
        // compaction points) differs between runs. Timing-dependent
        // counters (batches, overflow) are deliberately not compared.
        let a = run_live_campaign(&tiny(23), LiveOptions::default());
        let b = run_live_campaign(&tiny(23), LiveOptions::default());
        assert_eq!(a.finished.snapshot.ds, b.finished.snapshot.ds);
        assert_eq!(a.finished.snapshot.index, b.finished.snapshot.index);
        assert_eq!(a.finished.snapshot.cols, b.finished.snapshot.cols);
        assert_eq!(a.finished.stats.as_clean_stats(), b.finished.stats.as_clean_stats());
    }
}
