//! Incremental-vs-batch equivalence under adversarial arrival orders.
//!
//! The property: feed a journaled `CollectionServer` an *arbitrary*
//! interleaving of per-device record streams — duplicate deliveries,
//! cross-device and in-device reordering, tap drains at random points, an
//! optional mid-stream crash + journal recovery — and the `LiveEngine`'s
//! final snapshot is bit-identical to a batch clean of exactly the records
//! the server retained, minus the engine's late set (excluded on both
//! sides by construction). This is the streaming analogue of the
//! chaos-convergence proof: the server tolerates transport chaos, the
//! engine tolerates tap chaos, and their composition still lands on the
//! batch pipeline's answer.

use mobitrace_collector::{encode_frame, CleanOptions, CollectionServer, IngestTap, TapBatch};
use mobitrace_core::AnalysisContext;
use mobitrace_live::{batch_reference, check_convergence, LiveEngine, LiveOptions};
use mobitrace_model::{
    AppCategory, AppCounter, AssocInfo, Band, Bssid, CampaignMeta, CellId, Channel,
    CounterSnapshot, Dbm, DeviceId, Essid, Os, OsVersion, Record, ScanSummary, SimTime,
    TrafficCounters, WifiState, Year,
};
use proptest::prelude::*;

fn meta(days: u32) -> CampaignMeta {
    CampaignMeta { year: Year::Y2015, start: Year::Y2015.campaign_start(), days, seed: 0 }
}

/// Cumulative counters as a monotone function of the running volume.
fn counters(cum: u64) -> CounterSnapshot {
    CounterSnapshot {
        cell3g: TrafficCounters {
            rx_bytes: cum / 3,
            tx_bytes: cum / 9,
            rx_pkts: cum / 1400,
            tx_pkts: cum / 4000,
        },
        lte: TrafficCounters {
            rx_bytes: cum * 2,
            tx_bytes: cum / 2,
            rx_pkts: cum / 450,
            tx_pkts: cum / 1800,
        },
        wifi: TrafficCounters {
            rx_bytes: cum,
            tx_bytes: cum / 4,
            rx_pkts: cum / 900,
            tx_pkts: cum / 3600,
        },
    }
}

/// One synthetic sample. Time derives from `seq` (eight bins per synthetic
/// day, so short streams still span several days), which makes seq order
/// and time order agree per device — the co-monotonicity the real agent
/// guarantees. Every third sample associates to one of a few APs
/// (exercising first-encounter interning across compactions) and every
/// sample carries a cumulative per-app counter (exercising app-delta
/// replication).
fn rec(dev: u32, seq: u32, cum: u64, tether: bool, osv: OsVersion) -> Record {
    let wifi = if (seq + dev).is_multiple_of(3) {
        let k = (seq / 3 + dev) % 5;
        WifiState::Associated(AssocInfo {
            bssid: Bssid::from_u64(0xA0_0000 + u64::from(k)),
            essid: Essid::new(format!("net-{}", k % 3)),
            band: Band::Ghz24,
            channel: Channel(6),
            rssi: Dbm::new(-55),
        })
    } else {
        WifiState::OnUnassociated
    };
    Record {
        device: DeviceId(dev),
        os: Os::Ios,
        seq,
        time: SimTime::from_day_bin(seq / 8, seq % 8),
        boot_epoch: 0,
        counters: counters(cum),
        wifi,
        scan: ScanSummary::default(),
        apps: vec![AppCounter {
            category: AppCategory::Video,
            counters: TrafficCounters {
                rx_bytes: cum / 2,
                tx_bytes: cum / 8,
                rx_pkts: 0,
                tx_pkts: 0,
            },
        }],
        geo: CellId::new((dev % 7) as i16, (seq % 5) as i16),
        battery_pct: 70,
        tethering: tether,
        os_version: osv,
    }
}

/// Move everything currently in the tap into the engine.
fn drain(tap: &IngestTap, engine: &mut LiveEngine, scratch: &mut Vec<TapBatch>) {
    tap.drain_into(scratch);
    for b in scratch.drain(..) {
        engine.ingest_batch(&b);
    }
}

fn proptest_cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(16)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: proptest_cases(), ..ProptestConfig::default() })]

    /// Any interleaving, any lateness allowance, duplicates, random drain
    /// points, an optional crash/recover cycle: live == batch, bit for bit.
    #[test]
    fn shuffled_arrivals_converge(
        streams in prop::collection::vec(
            prop::collection::vec((0u64..40_000, prop::bool::weighted(0.07)), 3..28),
            1..4,
        ),
        update_at in prop::collection::vec(prop::option::of(0usize..20), 3),
        swaps in prop::collection::vec(any::<prop::sample::Index>(), 96),
        actions in prop::collection::vec(0u8..8, 96),
        crash_at in prop::option::of(0usize..80),
        lateness in 5u32..40,
    ) {
        // Co-monotonic per-device streams with cumulative counters and an
        // optional iOS 8.2 transition mid-stream.
        let mut all: Vec<Record> = Vec::new();
        for (d, incrs) in streams.iter().enumerate() {
            let mut cum = 0u64;
            for (i, &(inc, tether)) in incrs.iter().enumerate() {
                cum += inc;
                let osv = match update_at[d] {
                    Some(k) if i >= k => OsVersion::IOS_8_2,
                    _ => OsVersion::new(8, 1),
                };
                all.push(rec(d as u32, i as u32, cum, tether, osv));
            }
        }
        // Arbitrary delivery order: a Fisher–Yates pass driven by the
        // strategy, reordering freely across and within devices.
        for i in (1..all.len()).rev() {
            let j = swaps[i % swaps.len()].index(i + 1);
            all.swap(i, j);
        }

        let server = CollectionServer::new().with_journal();
        let tap = server.attach_tap();
        let mut engine = LiveEngine::new(
            meta(8),
            streams.len(),
            LiveOptions {
                lateness_minutes: lateness,
                compact_min_tail: 8,
                ..LiveOptions::default()
            },
        );
        let mut scratch = Vec::new();
        for (k, r) in all.iter().enumerate() {
            if crash_at == Some(k) {
                // Undrained tap batches die with the process; recovery
                // replays the whole store and the engine deduplicates.
                server.crash();
                server.recover();
            }
            server.ingest(&encode_frame(r)).unwrap();
            match actions[k % actions.len()] {
                0 | 1 => drain(&tap, &mut engine, &mut scratch),
                2 => {
                    // Redelivered frame: the server refuses it, so the tap
                    // never republishes it.
                    prop_assert_eq!(server.ingest(&encode_frame(r)), Ok(false));
                }
                _ => {}
            }
        }
        drain(&tap, &mut engine, &mut scratch);
        let fin = engine.finish();
        let records = server.into_records();
        if let Err(why) = check_convergence(&fin, &records, CleanOptions::default()) {
            return Err(TestCaseError::fail(why));
        }
    }
}

/// The live snapshot is not just bin-equal: an [`AnalysisContext`] served
/// *from* it via `from_parts` — reusing the incrementally maintained index
/// and columns instead of rebuilding them — matches a context built from
/// scratch on the batch dataset, field by field.
#[test]
fn live_context_equals_batch_context() {
    let server = CollectionServer::new().with_journal();
    let tap = server.attach_tap();
    let mut engine =
        LiveEngine::new(meta(8), 3, LiveOptions { compact_min_tail: 16, ..LiveOptions::default() });
    let mut scratch = Vec::new();
    for seq in 0..40u32 {
        for dev in [2u32, 0, 1] {
            let cum = u64::from(seq) * 3_000 + u64::from(dev) * 17;
            let r = rec(dev, seq, cum, false, OsVersion::new(8, 1));
            server.ingest(&encode_frame(&r)).unwrap();
        }
        if seq % 5 == 0 {
            drain(&tap, &mut engine, &mut scratch);
        }
    }
    drain(&tap, &mut engine, &mut scratch);
    let fin = engine.finish();
    assert!(fin.stats.compactions >= 2, "compaction never amortised mid-stream");

    let records = server.into_records();
    let (batch_ds, _) = batch_reference(
        fin.snapshot.ds.meta.clone(),
        fin.snapshot.ds.devices.clone(),
        &records,
        &fin.late,
        CleanOptions::default(),
    );
    let live = AnalysisContext::from_parts(
        &fin.snapshot.ds,
        fin.snapshot.index.clone(),
        fin.snapshot.cols.clone(),
    );
    let batch = AnalysisContext::new(&batch_ds);
    assert_eq!(*live.ds, batch_ds);
    assert_eq!(live.days, batch.days);
    assert_eq!(live.classes, batch.classes);
    assert_eq!(live.thresholds, batch.thresholds);
    assert_eq!(live.aps, batch.aps);
    assert_eq!(live.home_cell, batch.home_cell);
    assert_eq!(live.index, batch.index);
    assert_eq!(live.cols, batch.cols);
}
