//! Filtered-query ≡ eager-filtered-batch equivalence.
//!
//! The property the serve layer stands on: compiling a filter into a
//! selection vector, gathering columns / rebuilding the index from the
//! selection, and running the analysis passes through
//! `AnalysisContext::from_parts` is **bit-identical** — every context
//! product and every metric in the payload — to eagerly cloning the
//! selected bins into a fresh `Dataset` and running the whole batch
//! pipeline (`AnalysisContext::new`) over that copy. Filtering is a view,
//! never an approximation.
//!
//! Adversarial shapes are generated on purpose: empty filter results
//! (`device=99` matches nothing), single-device datasets, and row counts
//! that are not multiples of any SIMD lane width (sizes drawn from
//! 0..13).

use mobitrace_core::AnalysisContext;
use mobitrace_model::{
    ApEntry, ApRef, AppBin, AppCategory, Band, BinRecord, Bssid, CampaignMeta, Carrier, CellId,
    Channel, Dataset, DatasetColumns, Dbm, DeviceId, DeviceInfo, Essid, Os, OsVersion, ScanSummary,
    SimTime, WifiAssoc, WifiBinState, Year,
};
use mobitrace_query::{evaluate_payload, materialize, parse, select_rows, CompileOptions};
use proptest::prelude::*;

/// Expression pool: every field, both adversarial extremes (`device=99`
/// selects nothing on these datasets; `device=0` pins a single device),
/// venue predicates (forcing the classification path) and nested boolean
/// structure.
const EXPRS: &[&str] = &[
    "device=99",
    "device=0",
    "device!=0",
    "day>=2",
    "day<1",
    "hour>=6 && hour<22",
    "os=android",
    "os!=android",
    "wifi=assoc",
    "wifi=available",
    "wifi!=off",
    "venue=home",
    "venue!=home",
    "venue=public || venue=office",
    "cohort=0 || cohort=2",
    "!(wifi=off || day<1)",
    "(venue=home && hour>=18) || wifi=available",
];

fn make_bin(dev: u32, day: u32, slot: u32, wifi_kind: u8, ap: u32, vol: u64) -> BinRecord {
    let wifi = match wifi_kind {
        0 => WifiBinState::Off,
        1 => WifiBinState::OnUnassociated,
        _ => WifiBinState::Associated(WifiAssoc {
            ap: ApRef(ap),
            band: if ap.is_multiple_of(2) { Band::Ghz24 } else { Band::Ghz5 },
            channel: Channel(6),
            rssi: Dbm::new(-40 - (ap as i16) * 9),
        }),
    };
    BinRecord {
        device: DeviceId(dev),
        // 16 slots per day spread across the 24 h so hour predicates see
        // both halves of an `hour>=6 && hour<22` window.
        time: SimTime::from_day_bin(day, slot * 9),
        rx_3g: vol / 7,
        tx_3g: vol / 19,
        rx_lte: vol,
        tx_lte: vol / 4,
        rx_wifi: vol * 2,
        tx_wifi: vol / 2,
        wifi,
        scan: ScanSummary {
            n24_all: (vol % 5) as u16,
            n24_public_strong: (vol % 3) as u16,
            ..ScanSummary::default()
        },
        apps: if vol.is_multiple_of(2) {
            vec![AppBin { category: AppCategory::Video, rx_bytes: vol / 3, tx_bytes: vol / 9 }]
        } else {
            vec![]
        },
        geo: CellId::new((dev % 5) as i16, (day % 3) as i16),
        os_version: OsVersion::new(4, 4),
    }
}

fn make_dataset(n_devices: u32, raw: &[(u32, u32, u32, u8, u32, u64)]) -> Dataset {
    let mut bins: Vec<BinRecord> = Vec::new();
    for &(dev, day, slot, wifi_kind, ap, vol) in raw {
        bins.push(make_bin(dev % n_devices, day, slot, wifi_kind, ap, vol));
    }
    bins.sort_by_key(|b| (b.device, b.time));
    bins.dedup_by_key(|b| (b.device, b.time));
    Dataset {
        meta: CampaignMeta {
            year: Year::Y2013,
            start: Year::Y2013.campaign_start(),
            days: 6,
            seed: 0,
        },
        devices: (0..n_devices)
            .map(|i| DeviceInfo {
                device: DeviceId(i),
                os: if i % 2 == 0 { Os::Android } else { Os::Ios },
                carrier: Carrier::B,
                recruited: true,
                survey: None,
                truth: None,
            })
            .collect(),
        aps: (0..4u64)
            .map(|i| ApEntry {
                bssid: Bssid::from_u64(0xBB_0000 + i),
                essid: Essid::new(format!("net-{i}")),
            })
            .collect(),
        bins,
    }
}

fn proptest_cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: proptest_cases(), ..ProptestConfig::default() })]

    /// For any generated dataset and any pool expression: the lazy
    /// filtered view (gather + index rebuild + `from_parts`) equals the
    /// eager filtered copy (bin clone + full `AnalysisContext::new`) in
    /// every context product and every payload metric.
    #[test]
    fn filtered_view_equals_eager_copy(
        n_devices in 1u32..4,
        raw in prop::collection::vec(
            (0u32..4, 0u32..6, 0u32..16, 0u8..3, 0u32..4, 0u64..50_000),
            0..13,
        ),
        expr_idx in 0usize..EXPRS.len(),
    ) {
        let src = EXPRS[expr_idx];
        let ds = make_dataset(n_devices, &raw);
        let cols = DatasetColumns::build(&ds);
        let expr = parse(src).unwrap();
        let opts = CompileOptions::default();
        let rows = select_rows(&expr, &ds, &cols, opts);

        // Lazy path: the serve layer's per-generation work.
        let view = materialize(&ds, &cols, &rows);
        let lazy = view.context();

        // Eager path: clone the selected bins and run the batch pipeline
        // from scratch.
        let eager_ds = Dataset {
            meta: ds.meta.clone(),
            devices: ds.devices.clone(),
            aps: ds.aps.clone(),
            bins: rows.iter().map(|&r| ds.bins[r as usize].clone()).collect(),
        };
        let eager = AnalysisContext::new(&eager_ds);

        prop_assert_eq!(*lazy.ds, eager_ds);
        prop_assert_eq!(&lazy.index, &eager.index);
        prop_assert_eq!(&lazy.cols, &eager.cols);
        prop_assert_eq!(&lazy.days, &eager.days);
        prop_assert_eq!(&lazy.classes, &eager.classes);
        prop_assert_eq!(lazy.thresholds, eager.thresholds);
        prop_assert_eq!(&lazy.aps, &eager.aps);
        prop_assert_eq!(&lazy.home_cell, &eager.home_cell);
        prop_assert_eq!(evaluate_payload(&lazy), evaluate_payload(&eager));
    }
}

/// The three named adversarial shapes, pinned deterministically so they
/// run on every `cargo test` even when the random cases miss them.
#[test]
fn adversarial_shapes_pinned() {
    // 11 bins: not a multiple of 2, 4 or 8 lanes.
    let raw: Vec<(u32, u32, u32, u8, u32, u64)> =
        (0..11).map(|i| (i % 3, i % 6, i, (i % 3) as u8, i % 4, u64::from(i) * 1019)).collect();
    for (n_devices, src) in [
        (3, "device=99"), // empty filter result
        (1, "device=0"),  // single device, full selection
        (3, "wifi=assoc"),
    ] {
        let ds = make_dataset(n_devices, &raw);
        let cols = DatasetColumns::build(&ds);
        let expr = parse(src).unwrap();
        let rows = select_rows(&expr, &ds, &cols, CompileOptions::default());
        let view = materialize(&ds, &cols, &rows);
        let lazy = view.context();
        let eager_ds = Dataset {
            meta: ds.meta.clone(),
            devices: ds.devices.clone(),
            aps: ds.aps.clone(),
            bins: rows.iter().map(|&r| ds.bins[r as usize].clone()).collect(),
        };
        let eager = AnalysisContext::new(&eager_ds);
        assert_eq!(lazy.cols, eager.cols, "{src}");
        assert_eq!(lazy.index, eager.index, "{src}");
        assert_eq!(evaluate_payload(&lazy), evaluate_payload(&eager), "{src}");
    }
}
