//! Query executor: registered queries evaluated against snapshot
//! generations, producing serializable JSONL records.
//!
//! A [`QuerySet`] holds the parsed queries from the CLI's repeated
//! `--where` flags (plus the implicit unfiltered query). Each snapshot
//! generation — a live-engine compaction, a `.mtpool` epoch, or a batch
//! dataset — is evaluated by compiling every query's selection vector
//! against the snapshot's columns, materializing the filtered view, and
//! running the unchanged analysis passes through
//! `AnalysisContext::from_parts`. The unfiltered query skips selection
//! entirely and reuses the snapshot's own index/columns, so its payload
//! is bit-identical to the batch pipeline over the same dataset — the
//! invariant the serve gate asserts at end of campaign.

use crate::expr::{parse, FilterExpr, ParseError};
use crate::filter::{materialize, select_rows, CompileOptions};
use mobitrace_core::availability::{offload_potential, OffloadPotential};
use mobitrace_core::cap::cap_analysis;
use mobitrace_core::quality::{rssi_analysis, RssiAnalysis};
use mobitrace_core::timeseries::{aggregate_series, venue_series};
use mobitrace_core::AnalysisContext;
use mobitrace_model::{Dataset, DatasetColumns, DatasetIndex};
use serde::Serialize;
use std::time::Instant;

/// One registered query: an id for the output stream plus the parsed
/// filter (`None` = unfiltered, evaluate the whole snapshot).
#[derive(Debug, Clone)]
pub struct Query {
    /// Identifier echoed into every output record (`q1`, `q2`, … or a
    /// user-chosen name).
    pub id: String,
    /// The original `--where` source string (empty for unfiltered);
    /// echoed into output records so a stream is self-describing.
    pub source: String,
    /// Parsed filter; `None` evaluates the unfiltered snapshot.
    pub expr: Option<FilterExpr>,
}

impl Query {
    /// The implicit whole-snapshot query.
    pub fn unfiltered(id: impl Into<String>) -> Query {
        Query { id: id.into(), source: String::new(), expr: None }
    }

    /// Parse a `--where` string into a registered query.
    pub fn parse(id: impl Into<String>, source: &str) -> Result<Query, ParseError> {
        Ok(Query { id: id.into(), source: source.to_string(), expr: Some(parse(source)?) })
    }
}

/// The metric payload of one (query, generation) evaluation: the
/// paper's headline live-watchable figures, computed by the unchanged
/// batch passes over the (possibly filtered) view.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricPayload {
    /// Bins in the evaluated view.
    pub bins: usize,
    /// Devices with at least one bin in the view.
    pub devices: usize,
    /// WiFi share of total volume (Fig. 2 headline).
    pub wifi_share: f64,
    /// §3.5 offload-potential estimate (Fig. 17).
    pub offload: OffloadPotential,
    /// Fig. 15 per-venue RSSI PDFs.
    pub rssi: RssiAnalysis,
    /// WiFi volume shares per venue (home, public, office) — Fig. 12.
    pub venue_shares: (f64, f64, f64),
    /// Share of capped users throttled at month end (Fig. 19).
    pub cap_capped_user_share: f64,
    /// Median capped-vs-uncapped gap (bytes).
    pub cap_median_gap: f64,
}

/// Run the payload passes over a built context. Every pass is the same
/// function the batch pipeline calls, so payload equality against batch
/// output is equality of the underlying figures.
pub fn evaluate_payload(ctx: &AnalysisContext<'_>) -> MetricPayload {
    let series = aggregate_series(ctx.ds, &ctx.cols);
    let venues = venue_series(ctx.ds, &ctx.cols, &ctx.aps);
    let cap = cap_analysis(&ctx.days);
    MetricPayload {
        bins: ctx.ds.bins.len(),
        devices: ctx.index.devices_with_bins().count(),
        wifi_share: series.wifi_share(),
        offload: offload_potential(ctx.ds, &ctx.cols),
        rssi: rssi_analysis(&ctx.cols, &ctx.aps),
        venue_shares: venues.shares,
        cap_capped_user_share: cap.capped_user_share,
        cap_median_gap: cap.median_gap,
    }
}

/// High-water mark of a snapshot: the largest bin-start minute present,
/// or `None` for an empty snapshot. Streams report it so a consumer can
/// tell how far into the campaign each generation reaches.
pub fn watermark_minute(cols: &DatasetColumns) -> Option<u32> {
    cols.time.iter().map(|t| t.minute).max()
}

/// One JSONL output record: query identity, snapshot provenance, and the
/// metric payload.
///
/// `Serialize` is implemented by hand (not derived) because the JSONL
/// schema names the filter key `where` — a Rust keyword the field cannot
/// be called.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRecord {
    /// Registered query id.
    pub query: String,
    /// The query's `--where` source (empty = unfiltered); serialized
    /// under the key `where`.
    pub filter: String,
    /// Snapshot generation (live compaction count, pool epoch, or 0 for
    /// one-shot batch).
    pub generation: u64,
    /// Snapshot high-water mark in campaign minutes.
    pub watermark: Option<u32>,
    /// Rows selected by the filter (bins in the evaluated view).
    pub rows: usize,
    /// Wall-clock seconds this evaluation took (compile + materialize +
    /// passes).
    pub elapsed_s: f64,
    /// The metric payload.
    pub metrics: MetricPayload,
}

impl Serialize for ServeRecord {
    fn serialize<S: serde::ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::Composite;
        let mut state = serializer.serialize_struct("ServeRecord", 7)?;
        state.serialize_field("query", &self.query)?;
        state.serialize_field("where", &self.filter)?;
        state.serialize_field("generation", &self.generation)?;
        state.serialize_field("watermark", &self.watermark)?;
        state.serialize_field("rows", &self.rows)?;
        state.serialize_field("elapsed_s", &self.elapsed_s)?;
        state.serialize_field("metrics", &self.metrics)?;
        state.end()
    }
}

/// A set of registered queries evaluated together against each snapshot
/// generation.
#[derive(Debug, Clone)]
pub struct QuerySet {
    /// Registered queries, evaluated in order.
    pub queries: Vec<Query>,
    /// Compiler options (cohort count).
    pub opts: CompileOptions,
}

impl QuerySet {
    /// Evaluate every registered query against one snapshot generation.
    /// The snapshot arrives as (dataset, index, columns) — exactly what a
    /// `LiveSnapshot`, a decoded pool generation, or a batch dataset
    /// provides — and each query returns one [`ServeRecord`].
    pub fn evaluate(
        &self,
        ds: &Dataset,
        index: &DatasetIndex,
        cols: &DatasetColumns,
        generation: u64,
        watermark: Option<u32>,
    ) -> Vec<ServeRecord> {
        let mut out = Vec::with_capacity(self.queries.len());
        for q in &self.queries {
            let start = Instant::now();
            let (rows, payload) = match &q.expr {
                None => {
                    // Unfiltered: reuse the snapshot's own prebuilt parts.
                    let ctx = AnalysisContext::from_parts(ds, index.clone(), cols.clone());
                    (ds.bins.len(), evaluate_payload(&ctx))
                }
                Some(expr) => {
                    let sel = select_rows(expr, ds, cols, self.opts);
                    let n = sel.len();
                    let view = materialize(ds, cols, &sel);
                    let ctx = view.context();
                    (n, evaluate_payload(&ctx))
                }
            };
            out.push(ServeRecord {
                query: q.id.clone(),
                filter: q.source.clone(),
                generation,
                watermark,
                rows,
                elapsed_s: start.elapsed().as_secs_f64(),
                metrics: payload,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parse_propagates_errors() {
        assert!(Query::parse("q1", "venue=home").is_ok());
        let err = Query::parse("q1", "venue=mars").unwrap_err();
        assert_eq!(err.offset, 6);
    }

    #[test]
    fn serve_record_serializes_with_where_key() {
        let q = Query::parse("q1", "day>=1").unwrap();
        assert_eq!(q.source, "day>=1");
        // The JSONL schema promises a "where" key, not "filter".
        let rec = ServeRecord {
            query: "q1".into(),
            filter: "day>=1".into(),
            generation: 3,
            watermark: Some(1440),
            rows: 0,
            elapsed_s: 0.0,
            metrics: MetricPayload {
                bins: 0,
                devices: 0,
                wifi_share: 0.0,
                offload: Default::default(),
                rssi: empty_rssi(),
                venue_shares: (0.0, 0.0, 0.0),
                cap_capped_user_share: 0.0,
                cap_median_gap: 0.0,
            },
        };
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"where\":\"day>=1\""), "{json}");
        assert!(json.contains("\"generation\":3"), "{json}");
    }

    fn empty_rssi() -> RssiAnalysis {
        let ds = empty_dataset();
        let cols = DatasetColumns::build(&ds);
        let cls = mobitrace_core::apclass::classify_cols(&ds, &cols);
        rssi_analysis(&cols, &cls)
    }

    fn empty_dataset() -> Dataset {
        use mobitrace_model::{CampaignMeta, Year};
        Dataset {
            meta: CampaignMeta {
                year: Year::Y2013,
                start: Year::Y2013.campaign_start(),
                days: 1,
                seed: 0,
            },
            devices: vec![],
            aps: vec![],
            bins: vec![],
        }
    }

    #[test]
    fn unfiltered_query_equals_batch_context() {
        // QuerySet's unfiltered path must produce the same payload as
        // building the context from scratch (the serve-gate invariant).
        let ds = crate::filter::tests::dataset();
        let index = DatasetIndex::build(&ds);
        let cols = DatasetColumns::build(&ds);
        let set = QuerySet {
            queries: vec![Query::unfiltered("all"), Query::parse("q1", "wifi=assoc").unwrap()],
            opts: CompileOptions::default(),
        };
        let recs = set.evaluate(&ds, &index, &cols, 7, watermark_minute(&cols));
        assert_eq!(recs.len(), 2);
        let batch = AnalysisContext::new(&ds);
        assert_eq!(recs[0].metrics, evaluate_payload(&batch));
        assert_eq!(recs[0].generation, 7);
        assert_eq!(recs[0].rows, ds.bins.len());
        // The filtered query saw only associated rows.
        assert_eq!(recs[1].rows, cols.sel_associated.len());
        assert!(recs[1].metrics.bins < recs[0].metrics.bins);
    }
}
