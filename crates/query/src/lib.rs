//! # mobitrace-query
//!
//! The streaming query layer: a small filter language over the columnar
//! dataset layout, a predicate compiler producing row-selection vectors,
//! and a query executor that serves the existing analysis passes from
//! filtered views of any snapshot — live engine generations, `.mtpool`
//! generations, or batch datasets — without rewriting a single pass.
//!
//! The pipeline is deliberately three small stages:
//!
//! 1. **Parse** ([`expr`]): `--where "venue=home && day>=180"` →
//!    [`FilterExpr`]. Errors carry the byte offset and an expected-token
//!    hint; malformed user input never panics.
//! 2. **Compile** ([`filter`]): a [`FilterExpr`] is evaluated over
//!    [`DatasetColumns`](mobitrace_model::DatasetColumns) into an
//!    ascending row-selection vector, then
//!    [`materialize`](filter::materialize)d once per snapshot generation:
//!    columns are gathered ([`DatasetColumns::gather`]
//!    (mobitrace_model::DatasetColumns::gather)), the bin-range index is
//!    rebuilt by the streaming
//!    [`DatasetIndexBuilder`](mobitrace_model::DatasetIndexBuilder), and
//!    the filtered bins are cloned into a self-consistent [`Dataset`]
//!    (mobitrace_model::Dataset).
//! 3. **Execute** ([`exec`]): the filtered view feeds
//!    `AnalysisContext::from_parts` and the unchanged columnar passes
//!    (offload potential, RSSI PDFs, venue shares, cap throttling,
//!    aggregate WiFi share) produce one serializable
//!    [`MetricPayload`](exec::MetricPayload) per registered query per
//!    generation — the JSONL records `mobitrace serve` streams.
//!
//! The contract the property tests pin: a filtered query is
//! **bit-identical** to eagerly materializing the filtered dataset and
//! running the batch pipeline over it. Filtering is a view, never an
//! approximation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod expr;
pub mod filter;

pub use exec::{evaluate_payload, watermark_minute, MetricPayload, Query, QuerySet, ServeRecord};
pub use expr::{parse, CmpOp, FilterExpr, ParseError, Predicate, WifiClass};
pub use filter::{cohort_of, materialize, select_rows, CompileOptions, FilteredDataset};
