//! Predicate compiler: [`FilterExpr`] → ascending row-selection vector →
//! materialized filtered view.
//!
//! Compilation is a single scan of the columnar view: each row is tested
//! against the expression tree and selected rows are collected in order,
//! so the output is an ascending selection vector in the same sense as
//! `DatasetColumns::sel_associated`. Venue predicates need the AP
//! classification; it is built at most once per compile and only when the
//! expression actually mentions `venue` ([`FilterExpr::uses_venue`]).
//!
//! [`materialize`] then turns the selection into a self-consistent
//! [`FilteredDataset`]: columns gathered by `DatasetColumns::gather`
//! (bit-identical to rebuilding from the filtered bins), the bin-range
//! index rebuilt by the streaming `DatasetIndexBuilder`, and the selected
//! bin records cloned so the whole analysis library — which takes
//! `&Dataset` — runs unchanged over the view. The device/AP tables and
//! campaign metadata are kept whole: row filtering narrows *observations*,
//! never the identifier space, so `ApRef`/`DeviceId` indexes stay valid.

use crate::expr::{FilterExpr, Predicate, WifiClass};
use mobitrace_core::apclass::{classify_cols, ApClassification};
use mobitrace_core::AnalysisContext;
use mobitrace_model::{
    Dataset, DatasetColumns, DatasetIndex, DatasetIndexBuilder, DeviceId, WifiTag,
};

/// Knobs the compiler needs beyond the dataset itself.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Cohort count for `cohort=` predicates — must match the fleet
    /// router's `--cohorts` for the buckets to line up.
    pub n_cohorts: u32,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions { n_cohorts: 4 }
    }
}

/// The fleet router's device→cohort hash (splitmix64 output mixer over
/// the device id), replicated here so `--where "cohort=2"` selects
/// exactly the rows the fleet frontend routed to cohort 2. Parity with
/// `CohortRouter::cohort_of` is pinned by a cross-crate test.
pub fn cohort_of(device: DeviceId, n_cohorts: u32) -> u32 {
    let mut x = u64::from(device.0).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % u64::from(n_cohorts.max(1))) as u32
}

/// Evaluate one predicate at row `i`. `aps` is `Some` iff the expression
/// mentions venue.
fn eval_pred(
    p: &Predicate,
    i: usize,
    ds: &Dataset,
    cols: &DatasetColumns,
    aps: Option<&ApClassification>,
    opts: CompileOptions,
) -> bool {
    match *p {
        Predicate::Device(op, v) => op.eval(cols.device[i].0, v),
        Predicate::Cohort(op, v) => op.eval(cohort_of(cols.device[i], opts.n_cohorts), v),
        Predicate::Day(op, v) => op.eval(cols.time[i].day(), v),
        Predicate::Hour(op, v) => op.eval(cols.time[i].hour(), v),
        Predicate::Os(op, os) => op.eval(ds.devices[cols.device[i].index()].os, os),
        Predicate::Wifi(op, w) => {
            let tag = cols.wifi_tag[i];
            let matches = match w {
                WifiClass::Off => tag == WifiTag::Off,
                WifiClass::On => tag.is_on(),
                WifiClass::Assoc => tag == WifiTag::Associated,
                WifiClass::Available => tag == WifiTag::OnUnassociated,
            };
            // op is Eq or Ne (parser-enforced); Ne flips.
            matches == (op == crate::expr::CmpOp::Eq)
        }
        Predicate::Venue(op, v) => {
            // Venue predicates range over *associated* rows only: an
            // unassociated bin has no venue, so it matches neither
            // `venue=home` nor `venue!=home`.
            if cols.wifi_tag[i] != WifiTag::Associated {
                return false;
            }
            let class =
                aps.expect("venue predicate without classification").class(cols.assoc_ap[i]);
            (class == v) == (op == crate::expr::CmpOp::Eq)
        }
    }
}

fn eval_expr(
    e: &FilterExpr,
    i: usize,
    ds: &Dataset,
    cols: &DatasetColumns,
    aps: Option<&ApClassification>,
    opts: CompileOptions,
) -> bool {
    match e {
        FilterExpr::Pred(p) => eval_pred(p, i, ds, cols, aps, opts),
        FilterExpr::And(a, b) => {
            eval_expr(a, i, ds, cols, aps, opts) && eval_expr(b, i, ds, cols, aps, opts)
        }
        FilterExpr::Or(a, b) => {
            eval_expr(a, i, ds, cols, aps, opts) || eval_expr(b, i, ds, cols, aps, opts)
        }
        FilterExpr::Not(a) => !eval_expr(a, i, ds, cols, aps, opts),
    }
}

/// Compile the expression against one snapshot: an ascending vector of
/// the row indexes that satisfy it. The AP classification is computed
/// here (once) only if the expression mentions venue.
pub fn select_rows(
    expr: &FilterExpr,
    ds: &Dataset,
    cols: &DatasetColumns,
    opts: CompileOptions,
) -> Vec<u32> {
    let aps = expr.uses_venue().then(|| classify_cols(ds, cols));
    let mut rows = Vec::new();
    for i in 0..cols.device.len() {
        if eval_expr(expr, i, ds, cols, aps.as_ref(), opts) {
            rows.push(i as u32);
        }
    }
    rows
}

/// A filtered snapshot view: the selected bins as a self-consistent
/// dataset plus its prebuilt index and columns, ready for
/// `AnalysisContext::from_parts`.
pub struct FilteredDataset {
    /// The filtered dataset (full device/AP tables, selected bins only).
    pub ds: Dataset,
    /// Bin-range index over `ds.bins`.
    pub index: DatasetIndex,
    /// Columnar view of `ds.bins`.
    pub cols: DatasetColumns,
    /// The selection vector that produced this view (row indexes into the
    /// *source* snapshot).
    pub rows: Vec<u32>,
}

impl FilteredDataset {
    /// Build the analysis context over the filtered view without
    /// re-scanning: `from_parts` on the prebuilt index and columns.
    /// (Both are cloned — `from_parts` takes them by value — so the view
    /// can serve repeated evaluations.)
    pub fn context(&self) -> AnalysisContext<'_> {
        AnalysisContext::from_parts(&self.ds, self.index.clone(), self.cols.clone())
    }
}

/// Materialize a selection into a [`FilteredDataset`]. Columns are
/// gathered (not rebuilt) from the source columns; the index is rebuilt
/// by streaming the gathered device/time pairs — both bit-identical to
/// building from the filtered bins, which the property tests pin.
pub fn materialize(ds: &Dataset, cols: &DatasetColumns, rows: &[u32]) -> FilteredDataset {
    let fcols = cols.gather(rows);
    let mut builder = DatasetIndexBuilder::new();
    for i in 0..fcols.device.len() {
        builder.push(fcols.device[i], fcols.time[i]);
    }
    let index = builder.finish(ds.devices.len());
    let fds = Dataset {
        meta: ds.meta.clone(),
        devices: ds.devices.clone(),
        aps: ds.aps.clone(),
        bins: rows.iter().map(|&r| ds.bins[r as usize].clone()).collect(),
    };
    FilteredDataset { ds: fds, index, cols: fcols, rows: rows.to_vec() }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::expr::parse;
    use mobitrace_model::{
        ApEntry, ApRef, AppBin, BinRecord, Bssid, CampaignMeta, Carrier, CellId, DeviceInfo, Essid,
        Os, OsVersion, ScanSummary, SimTime, WifiAssoc, WifiBinState, Year,
    };

    fn assoc(ap: u32) -> WifiBinState {
        WifiBinState::Associated(WifiAssoc {
            ap: ApRef(ap),
            band: mobitrace_model::Band::Ghz24,
            channel: mobitrace_model::Channel(6),
            rssi: mobitrace_model::Dbm::new(-50),
        })
    }

    fn bin(dev: u32, day: u32, b: u32, wifi: WifiBinState) -> BinRecord {
        BinRecord {
            device: DeviceId(dev),
            time: SimTime::from_day_bin(day, b),
            rx_3g: 10,
            tx_3g: 1,
            rx_lte: 100,
            tx_lte: 10,
            rx_wifi: 1000,
            tx_wifi: 100,
            wifi,
            scan: ScanSummary::default(),
            apps: vec![AppBin {
                category: mobitrace_model::AppCategory::Browser,
                rx_bytes: 7,
                tx_bytes: 3,
            }],
            geo: CellId::new(dev as i16, day as i16),
            os_version: OsVersion::new(4, 4),
        }
    }

    pub(crate) fn dataset() -> Dataset {
        let mut bins = Vec::new();
        for dev in 0..3u32 {
            for day in 0..4u32 {
                bins.push(bin(dev, day, 10, WifiBinState::Off));
                bins.push(bin(dev, day, 70, WifiBinState::OnUnassociated));
                bins.push(bin(dev, day, 135, assoc(dev)));
            }
        }
        bins.sort_by_key(|b| (b.device, b.time));
        Dataset {
            meta: CampaignMeta {
                year: Year::Y2013,
                start: Year::Y2013.campaign_start(),
                days: 5,
                seed: 0,
            },
            devices: (0..3)
                .map(|i| DeviceInfo {
                    device: DeviceId(i),
                    os: if i == 0 { Os::Ios } else { Os::Android },
                    carrier: Carrier::B,
                    recruited: true,
                    survey: None,
                    truth: None,
                })
                .collect(),
            aps: (0..3u64)
                .map(|i| ApEntry { bssid: Bssid::from_u64(i), essid: Essid::new("x") })
                .collect(),
            bins,
        }
    }

    /// Reference implementation: per-bin row-record scan, no columns.
    fn naive_rows(expr_src: &str, ds: &Dataset) -> Vec<u32> {
        let cols = DatasetColumns::build(ds);
        let expr = parse(expr_src).unwrap();
        let aps = classify_cols(ds, &cols);
        let opts = CompileOptions::default();
        let mut out = Vec::new();
        for (i, b) in ds.bins.iter().enumerate() {
            let keep = eval_naive(&expr, b, ds, &aps, opts);
            if keep {
                out.push(i as u32);
            }
        }
        out
    }

    fn eval_naive(
        e: &FilterExpr,
        b: &BinRecord,
        ds: &Dataset,
        aps: &ApClassification,
        opts: CompileOptions,
    ) -> bool {
        use crate::expr::CmpOp;
        match e {
            FilterExpr::And(x, y) => {
                eval_naive(x, b, ds, aps, opts) && eval_naive(y, b, ds, aps, opts)
            }
            FilterExpr::Or(x, y) => {
                eval_naive(x, b, ds, aps, opts) || eval_naive(y, b, ds, aps, opts)
            }
            FilterExpr::Not(x) => !eval_naive(x, b, ds, aps, opts),
            FilterExpr::Pred(p) => match *p {
                Predicate::Device(op, v) => op.eval(b.device.0, v),
                Predicate::Cohort(op, v) => op.eval(cohort_of(b.device, opts.n_cohorts), v),
                Predicate::Day(op, v) => op.eval(b.time.day(), v),
                Predicate::Hour(op, v) => op.eval(b.time.hour(), v),
                Predicate::Os(op, os) => op.eval(ds.devices[b.device.index()].os, os),
                Predicate::Wifi(op, w) => {
                    let m = match w {
                        WifiClass::Off => matches!(b.wifi, WifiBinState::Off),
                        WifiClass::On => !matches!(b.wifi, WifiBinState::Off),
                        WifiClass::Assoc => matches!(b.wifi, WifiBinState::Associated(_)),
                        WifiClass::Available => matches!(b.wifi, WifiBinState::OnUnassociated),
                    };
                    m == (op == CmpOp::Eq)
                }
                Predicate::Venue(op, v) => match &b.wifi {
                    WifiBinState::Associated(a) => (aps.class(a.ap) == v) == (op == CmpOp::Eq),
                    _ => false,
                },
            },
        }
    }

    #[test]
    fn select_rows_matches_naive_scan() {
        let ds = dataset();
        let cols = DatasetColumns::build(&ds);
        let opts = CompileOptions::default();
        let exprs = [
            "device=1",
            "device!=1 && day>=2",
            "wifi=assoc",
            "wifi!=off",
            "wifi=available || wifi=off",
            "os=android",
            "os!=android && hour<12",
            "cohort=0 || cohort=1 || cohort=2 || cohort=3",
            "venue=home",
            "venue!=home",
            "!(venue=home) && wifi=assoc",
            "day>=1 && day<3 && hour>=6",
            "device=99",
        ];
        for src in exprs {
            let expr = parse(src).unwrap();
            let got = select_rows(&expr, &ds, &cols, opts);
            assert_eq!(got, naive_rows(src, &ds), "expression: {src}");
        }
    }

    #[test]
    fn cohort_covers_all_devices() {
        // Every row matches exactly one cohort bucket.
        let ds = dataset();
        let cols = DatasetColumns::build(&ds);
        let opts = CompileOptions { n_cohorts: 4 };
        let mut total = 0;
        for c in 0..4 {
            let expr = parse(&format!("cohort={c}")).unwrap();
            total += select_rows(&expr, &ds, &cols, opts).len();
        }
        assert_eq!(total, ds.bins.len());
    }

    #[test]
    fn materialized_view_is_self_consistent() {
        let ds = dataset();
        let cols = DatasetColumns::build(&ds);
        let expr = parse("wifi=assoc || day=0").unwrap();
        let rows = select_rows(&expr, &ds, &cols, CompileOptions::default());
        assert!(!rows.is_empty());
        let f = materialize(&ds, &cols, &rows);
        assert_eq!(f.ds.bins.len(), rows.len());
        // Gathered columns and rebuilt index must equal a from-scratch
        // build over the filtered bins.
        assert_eq!(f.cols, DatasetColumns::build(&f.ds));
        assert_eq!(f.index, DatasetIndex::build(&f.ds));
        // Identifier tables stay whole.
        assert_eq!(f.ds.devices.len(), ds.devices.len());
        assert_eq!(f.ds.aps.len(), ds.aps.len());
    }

    #[test]
    fn empty_selection_materializes_cleanly() {
        let ds = dataset();
        let cols = DatasetColumns::build(&ds);
        let expr = parse("device=99").unwrap();
        let rows = select_rows(&expr, &ds, &cols, CompileOptions::default());
        assert!(rows.is_empty());
        let f = materialize(&ds, &cols, &rows);
        assert!(f.ds.bins.is_empty());
        let ctx = f.context();
        assert!(ctx.days.is_empty());
    }
}
