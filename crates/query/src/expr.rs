//! The `--where` filter language: lexer, recursive-descent parser, AST.
//!
//! Grammar (standard precedence, `&&` binds tighter than `||`):
//!
//! ```text
//! expr    := or
//! or      := and ( '||' and )*
//! and     := unary ( '&&' unary )*
//! unary   := '!' unary | '(' expr ')' | comparison
//! comparison := field op value
//! field   := device | cohort | day | hour | os | wifi | venue
//! op      := '=' | '==' | '!=' | '<' | '<=' | '>' | '>='
//! value   := integer | keyword
//! ```
//!
//! Numeric fields (`device`, `day`, `hour`) accept every operator;
//! categorical fields (`os`, `wifi`, `venue`, `cohort`) accept only
//! `=`/`!=` — a cohort is a hash bucket and an ordering over venues is
//! meaningless, so the parser rejects `venue>home` at parse time with the
//! offset of the offending operator.
//!
//! Every error is a [`ParseError`]: byte offset into the source string,
//! what was found, and what the parser expected there. User input never
//! panics — the fuzz test in this module feeds the parser garbage and
//! expects `Err`, not unwinding.

use mobitrace_core::ApClass;
use mobitrace_model::Os;
use std::fmt;

/// Comparison operator of one predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` / `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordered pair.
    pub fn eval<T: PartialOrd>(self, lhs: T, rhs: T) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// WiFi interface state, as named in the filter language. `on` covers
/// both associated and unassociated-but-enabled bins; `assoc` and
/// `available` are the two exclusive halves of `on`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WifiClass {
    /// Interface off.
    Off,
    /// Interface enabled (associated or not).
    On,
    /// Associated to an AP.
    Assoc,
    /// Enabled but unassociated (the offload analyses' "available").
    Available,
}

/// One field comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// Device id comparison.
    Device(CmpOp, u32),
    /// Fleet cohort equality (`=`/`!=` only; the hash bucket of the
    /// device id under the fleet router's splitmix64 mix).
    Cohort(CmpOp, u32),
    /// Campaign day comparison.
    Day(CmpOp, u32),
    /// Hour-of-day comparison (0–23).
    Hour(CmpOp, u32),
    /// Device OS (`=`/`!=` only).
    Os(CmpOp, Os),
    /// WiFi interface state (`=`/`!=` only).
    Wifi(CmpOp, WifiClass),
    /// Venue class of the *associated* AP (`=`/`!=` only). Rows that are
    /// not associated match no venue predicate, `!=` included: `venue!=
    /// home` selects rows associated to a non-home AP.
    Venue(CmpOp, ApClass),
}

/// Parsed filter expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterExpr {
    /// Leaf comparison.
    Pred(Predicate),
    /// Both sides must hold.
    And(Box<FilterExpr>, Box<FilterExpr>),
    /// Either side must hold.
    Or(Box<FilterExpr>, Box<FilterExpr>),
    /// Negation.
    Not(Box<FilterExpr>),
}

impl FilterExpr {
    /// Does any predicate in the tree need the AP/venue classification?
    /// The compiler uses this to skip the classification pass entirely
    /// for venue-free filters.
    pub fn uses_venue(&self) -> bool {
        match self {
            FilterExpr::Pred(p) => matches!(p, Predicate::Venue(..)),
            FilterExpr::And(a, b) | FilterExpr::Or(a, b) => a.uses_venue() || b.uses_venue(),
            FilterExpr::Not(a) => a.uses_venue(),
        }
    }
}

impl fmt::Display for FilterExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterExpr::Pred(p) => {
                let (field, op, value): (&str, CmpOp, String) = match *p {
                    Predicate::Device(op, v) => ("device", op, v.to_string()),
                    Predicate::Cohort(op, v) => ("cohort", op, v.to_string()),
                    Predicate::Day(op, v) => ("day", op, v.to_string()),
                    Predicate::Hour(op, v) => ("hour", op, v.to_string()),
                    Predicate::Os(op, os) => (
                        "os",
                        op,
                        match os {
                            Os::Android => "android".into(),
                            Os::Ios => "ios".into(),
                        },
                    ),
                    Predicate::Wifi(op, w) => (
                        "wifi",
                        op,
                        match w {
                            WifiClass::Off => "off".into(),
                            WifiClass::On => "on".into(),
                            WifiClass::Assoc => "assoc".into(),
                            WifiClass::Available => "available".into(),
                        },
                    ),
                    Predicate::Venue(op, v) => (
                        "venue",
                        op,
                        match v {
                            ApClass::Home => "home".into(),
                            ApClass::Public => "public".into(),
                            ApClass::Office => "office".into(),
                            ApClass::Other => "other".into(),
                        },
                    ),
                };
                write!(f, "{field}{}{value}", op.symbol())
            }
            FilterExpr::And(a, b) => write!(f, "({a} && {b})"),
            FilterExpr::Or(a, b) => write!(f, "({a} || {b})"),
            FilterExpr::Not(a) => write!(f, "!{a}"),
        }
    }
}

/// A filter parse error: where in the source string it happened, what was
/// there, and what the parser expected instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the source string where the error starts.
    pub offset: usize,
    /// What was found at that offset (a token rendering, or
    /// `end of input`).
    pub found: String,
    /// What would have been valid there.
    pub expected: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "filter parse error at byte {}: expected {}, found {}",
            self.offset, self.expected, self.found
        )
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    fn new(offset: usize, found: impl Into<String>, expected: impl Into<String>) -> ParseError {
        ParseError { offset, found: found.into(), expected: expected.into() }
    }
}

/// Lexed token with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    Op(CmpOp),
    AndAnd,
    OrOr,
    Bang,
    LParen,
    RParen,
}

impl Tok {
    fn render(&self) -> String {
        match self {
            Tok::Ident(s) => format!("'{s}'"),
            Tok::Int(n) => format!("'{n}'"),
            Tok::Op(op) => format!("'{}'", op.symbol()),
            Tok::AndAnd => "'&&'".into(),
            Tok::OrOr => "'||'".into(),
            Tok::Bang => "'!'".into(),
            Tok::LParen => "'('".into(),
            Tok::RParen => "')'".into(),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            b')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    toks.push((i, Tok::AndAnd));
                    i += 2;
                } else {
                    return Err(ParseError::new(i, "'&'", "'&&'"));
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    toks.push((i, Tok::OrOr));
                    i += 2;
                } else {
                    return Err(ParseError::new(i, "'|'", "'||'"));
                }
            }
            b'=' => {
                toks.push((i, Tok::Op(CmpOp::Eq)));
                i += if bytes.get(i + 1) == Some(&b'=') { 2 } else { 1 };
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((i, Tok::Op(CmpOp::Ne)));
                    i += 2;
                } else {
                    toks.push((i, Tok::Bang));
                    i += 1;
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((i, Tok::Op(CmpOp::Le)));
                    i += 2;
                } else {
                    toks.push((i, Tok::Op(CmpOp::Lt)));
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((i, Tok::Op(CmpOp::Ge)));
                    i += 2;
                } else {
                    toks.push((i, Tok::Op(CmpOp::Gt)));
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n: u64 = text.parse().map_err(|_| {
                    ParseError::new(start, format!("'{text}'"), "a smaller integer")
                })?;
                toks.push((start, Tok::Int(n)));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((start, Tok::Ident(src[start..i].to_ascii_lowercase())));
            }
            _ => {
                // Render the full character, not the raw byte, so UTF-8
                // input produces a readable error.
                let ch = src[i..].chars().next().unwrap_or('?');
                return Err(ParseError::new(
                    i,
                    format!("'{ch}'"),
                    "a field name, operator, number, '(', ')', '!', '&&' or '||'",
                ));
            }
        }
    }
    Ok(toks)
}

/// Known field names, for the unknown-field error hint.
const FIELDS: &str = "one of the fields device, cohort, day, hour, os, wifi, venue";

struct Parser<'a> {
    toks: &'a [(usize, Tok)],
    pos: usize,
    /// Byte length of the source, for end-of-input offsets.
    end: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&(usize, Tok)> {
        self.toks.get(self.pos)
    }

    fn err_here(&self, expected: impl Into<String>) -> ParseError {
        match self.peek() {
            Some((off, tok)) => ParseError::new(*off, tok.render(), expected),
            None => ParseError::new(self.end, "end of input", expected),
        }
    }

    fn expr(&mut self) -> Result<FilterExpr, ParseError> {
        let mut lhs = self.and()?;
        while matches!(self.peek(), Some((_, Tok::OrOr))) {
            self.pos += 1;
            let rhs = self.and()?;
            lhs = FilterExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<FilterExpr, ParseError> {
        let mut lhs = self.unary()?;
        while matches!(self.peek(), Some((_, Tok::AndAnd))) {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = FilterExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<FilterExpr, ParseError> {
        match self.peek() {
            Some((_, Tok::Bang)) => {
                self.pos += 1;
                Ok(FilterExpr::Not(Box::new(self.unary()?)))
            }
            Some((_, Tok::LParen)) => {
                self.pos += 1;
                let inner = self.expr()?;
                match self.peek() {
                    Some((_, Tok::RParen)) => {
                        self.pos += 1;
                        Ok(inner)
                    }
                    _ => Err(self.err_here("')'")),
                }
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<FilterExpr, ParseError> {
        let (field_off, field) = match self.peek() {
            Some((off, Tok::Ident(name))) => (*off, name.clone()),
            _ => return Err(self.err_here(format!("{FIELDS} (or '(', '!')"))),
        };
        self.pos += 1;
        let (op_off, op) = match self.peek() {
            Some((off, Tok::Op(op))) => (*off, *op),
            _ => return Err(self.err_here("a comparison operator (=, !=, <, <=, >, >=)")),
        };
        self.pos += 1;
        let pred = match field.as_str() {
            "device" => Predicate::Device(op, self.int_value("a device id")?),
            "day" => Predicate::Day(op, self.int_value("a campaign day number")?),
            "hour" => Predicate::Hour(op, self.int_value("an hour of day (0-23)")?),
            "cohort" => {
                self.require_eq(op, op_off, "cohort")?;
                Predicate::Cohort(op, self.int_value("a cohort index")?)
            }
            "os" => {
                self.require_eq(op, op_off, "os")?;
                let os = self.keyword_value(
                    "os",
                    &[("android", Os::Android), ("ios", Os::Ios)],
                    "android or ios",
                )?;
                Predicate::Os(op, os)
            }
            "wifi" => {
                self.require_eq(op, op_off, "wifi")?;
                let w = self.keyword_value(
                    "wifi",
                    &[
                        ("off", WifiClass::Off),
                        ("on", WifiClass::On),
                        ("assoc", WifiClass::Assoc),
                        ("available", WifiClass::Available),
                    ],
                    "off, on, assoc or available",
                )?;
                Predicate::Wifi(op, w)
            }
            "venue" => {
                self.require_eq(op, op_off, "venue")?;
                let v = self.keyword_value(
                    "venue",
                    &[
                        ("home", ApClass::Home),
                        ("public", ApClass::Public),
                        ("office", ApClass::Office),
                        ("other", ApClass::Other),
                    ],
                    "home, public, office or other",
                )?;
                Predicate::Venue(op, v)
            }
            other => {
                return Err(ParseError::new(field_off, format!("'{other}'"), FIELDS));
            }
        };
        Ok(FilterExpr::Pred(pred))
    }

    /// Categorical fields admit only `=`/`!=`.
    fn require_eq(&self, op: CmpOp, op_off: usize, field: &str) -> Result<(), ParseError> {
        if matches!(op, CmpOp::Eq | CmpOp::Ne) {
            Ok(())
        } else {
            Err(ParseError::new(
                op_off,
                format!("'{}'", op.symbol()),
                format!("'=' or '!=' ({field} is categorical, not ordered)"),
            ))
        }
    }

    fn int_value(&mut self, what: &str) -> Result<u32, ParseError> {
        match self.peek() {
            Some((off, Tok::Int(n))) => {
                let v = u32::try_from(*n).map_err(|_| {
                    ParseError::new(*off, format!("'{n}'"), format!("{what} below 2^32"))
                })?;
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err_here(what.to_string())),
        }
    }

    fn keyword_value<T: Copy>(
        &mut self,
        field: &str,
        table: &[(&str, T)],
        expected: &str,
    ) -> Result<T, ParseError> {
        match self.peek() {
            Some((off, Tok::Ident(word))) => {
                for &(kw, v) in table {
                    if word == kw {
                        self.pos += 1;
                        return Ok(v);
                    }
                }
                Err(ParseError::new(*off, format!("'{word}'"), format!("{expected} for {field}")))
            }
            _ => Err(self.err_here(format!("{expected} for {field}"))),
        }
    }
}

/// Parse one filter expression. Empty (or all-whitespace) input is an
/// error: an explicitly unfiltered query is registered without a
/// `--where` clause, not with an empty one.
pub fn parse(src: &str) -> Result<FilterExpr, ParseError> {
    let toks = lex(src)?;
    if toks.is_empty() {
        return Err(ParseError::new(0, "end of input", format!("{FIELDS} (or '(', '!')")));
    }
    let mut p = Parser { toks: &toks, pos: 0, end: src.len() };
    let expr = p.expr()?;
    if let Some((off, tok)) = p.peek() {
        return Err(ParseError::new(*off, tok.render(), "'&&', '||' or end of input"));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(src: &str) -> Predicate {
        match parse(src).unwrap() {
            FilterExpr::Pred(p) => p,
            other => panic!("expected a leaf predicate, got {other:?}"),
        }
    }

    #[test]
    fn parses_every_field_and_operator() {
        assert_eq!(pred("device=7"), Predicate::Device(CmpOp::Eq, 7));
        assert_eq!(pred("device == 7"), Predicate::Device(CmpOp::Eq, 7));
        assert_eq!(pred("day>=180"), Predicate::Day(CmpOp::Ge, 180));
        assert_eq!(pred("day<3"), Predicate::Day(CmpOp::Lt, 3));
        assert_eq!(pred("hour<=23"), Predicate::Hour(CmpOp::Le, 23));
        assert_eq!(pred("hour>6"), Predicate::Hour(CmpOp::Gt, 6));
        assert_eq!(pred("cohort!=2"), Predicate::Cohort(CmpOp::Ne, 2));
        assert_eq!(pred("os=android"), Predicate::Os(CmpOp::Eq, Os::Android));
        assert_eq!(pred("os!=ios"), Predicate::Os(CmpOp::Ne, Os::Ios));
        assert_eq!(pred("wifi=assoc"), Predicate::Wifi(CmpOp::Eq, WifiClass::Assoc));
        assert_eq!(pred("WIFI=AVAILABLE"), Predicate::Wifi(CmpOp::Eq, WifiClass::Available));
        assert_eq!(pred("venue=home"), Predicate::Venue(CmpOp::Eq, ApClass::Home));
        assert_eq!(pred("venue!=office"), Predicate::Venue(CmpOp::Ne, ApClass::Office));
    }

    #[test]
    fn precedence_and_grouping() {
        // && binds tighter than ||.
        let e = parse("venue=home || venue=public && day>=1").unwrap();
        match e {
            FilterExpr::Or(_, rhs) => assert!(matches!(*rhs, FilterExpr::And(..))),
            other => panic!("expected Or at the root, got {other:?}"),
        }
        let grouped = parse("(venue=home || venue=public) && day>=1").unwrap();
        assert!(matches!(grouped, FilterExpr::And(..)));
        let negated = parse("!(wifi=off) && day<2").unwrap();
        match negated {
            FilterExpr::And(lhs, _) => assert!(matches!(*lhs, FilterExpr::Not(..))),
            other => panic!("expected And at the root, got {other:?}"),
        }
    }

    #[test]
    fn uses_venue_walks_the_tree() {
        assert!(parse("day>=1 && (os=ios || venue=home)").unwrap().uses_venue());
        assert!(!parse("day>=1 && (os=ios || wifi=assoc)").unwrap().uses_venue());
        assert!(parse("!venue!=public").unwrap().uses_venue());
    }

    #[test]
    fn unknown_field_reports_offset_and_hint() {
        let e = parse("day>=1 && foo=1").unwrap_err();
        assert_eq!(e.offset, 10);
        assert_eq!(e.found, "'foo'");
        assert!(e.expected.contains("device"), "hint lists fields: {e}");
        assert!(e.to_string().contains("at byte 10"));
    }

    #[test]
    fn categorical_fields_reject_order_operators() {
        let e = parse("venue>home").unwrap_err();
        assert_eq!(e.offset, 5);
        assert!(e.expected.contains("categorical"), "{e}");
        let e = parse("os<=android").unwrap_err();
        assert_eq!(e.offset, 2);
        let e = parse("cohort<3").unwrap_err();
        assert_eq!(e.offset, 6);
    }

    #[test]
    fn bad_values_report_the_expected_domain() {
        let e = parse("os=windows").unwrap_err();
        assert_eq!(e.offset, 3);
        assert!(e.expected.contains("android or ios"), "{e}");
        let e = parse("device=abc").unwrap_err();
        assert_eq!(e.offset, 7);
        assert!(e.expected.contains("device id"), "{e}");
        let e = parse("device=99999999999").unwrap_err();
        assert_eq!(e.offset, 7);
        assert!(e.expected.contains("2^32") || e.expected.contains("smaller"), "{e}");
    }

    #[test]
    fn truncated_input_reports_end_of_input() {
        let e = parse("day>=").unwrap_err();
        assert_eq!(e.offset, 5);
        assert_eq!(e.found, "end of input");
        let e = parse("day>=1 &&").unwrap_err();
        assert_eq!(e.offset, 9);
        assert_eq!(e.found, "end of input");
        let e = parse("(day=1").unwrap_err();
        assert_eq!(e.offset, 6);
        assert!(e.expected.contains("')'"), "{e}");
        let e = parse("").unwrap_err();
        assert_eq!(e.offset, 0);
    }

    #[test]
    fn stray_tokens_and_single_ampersand() {
        let e = parse("day=1 day=2").unwrap_err();
        assert_eq!(e.offset, 6);
        assert!(e.expected.contains("'&&'"), "{e}");
        let e = parse("day=1 & day=2").unwrap_err();
        assert_eq!(e.offset, 6);
        assert_eq!(e.expected, "'&&'");
        let e = parse("day=1 | day=2").unwrap_err();
        assert_eq!(e.offset, 6);
    }

    /// Garbage never panics — every malformed input is an Err with an
    /// in-bounds offset.
    #[test]
    fn junk_input_errors_instead_of_panicking() {
        let cases = [
            "@#$%",
            "((((",
            "))))",
            "&&",
            "||",
            "!",
            "=5",
            "venue=",
            "day 1",
            "día>=1",
            "device=-1",
            "\u{1F600}",
            "venue=home &&",
            "os==",
            "wifi!=maybe",
            "1=device",
            "day>>=1",
            "(()",
            "device=1)",
        ];
        for src in cases {
            let err = parse(src).expect_err(src);
            assert!(err.offset <= src.len(), "{src}: offset {} out of bounds", err.offset);
            assert!(!err.expected.is_empty());
        }
    }

    #[test]
    fn display_round_trips_structure() {
        let e = parse("(venue=home || venue=public) && day>=180 && !(wifi=off)").unwrap();
        let printed = e.to_string();
        let reparsed = parse(&printed).unwrap();
        assert_eq!(e, reparsed, "display output {printed} must reparse to the same tree");
    }
}
