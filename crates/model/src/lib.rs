//! # mobitrace-model
//!
//! Foundational domain types shared by every crate in the `mobitrace`
//! workspace: simulation time, traffic units, device/network identifiers,
//! application categories, raw measurement records, and the cleaned
//! [`Dataset`] that the analysis library consumes.
//!
//! The types here mirror the data model of the IMC'15 study *"Tracking the
//! Evolution and Diversity in Network Usage of Smartphones"*: a background
//! agent samples per-interface byte/packet counters, the associated WiFi AP
//! (BSSID/ESSID, RSSI, channel, band), WiFi scan results, per-application
//! traffic (Android only), battery state and a coarse (5 km) geolocation
//! every 10 minutes, and uploads the records to a collection server.
//!
//! This crate deliberately has no dependency on any other workspace crate so
//! that the analysis library (`mobitrace-core`) can be used on any dataset
//! expressed in these types, not only on simulated ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod columns;
pub mod dataset;
pub mod error;
pub mod ids;
pub mod index;
pub mod lanes;
pub mod live;
pub mod net;
pub mod record;
pub mod time;
pub mod units;
pub mod wellknown;

pub use apps::AppCategory;
pub use columns::{DatasetColumns, ScanColumns, WifiTag};
pub use dataset::{
    ApEntry, ApRef, AppBin, BinRecord, CampaignMeta, Carrier, Dataset, DeviceInfo, GroundTruth,
    Occupation, ScanSummary, SurveyLocation, SurveyReason, SurveyResponse, WifiAssoc, WifiBinState,
    YesNoNa,
};
pub use error::ModelError;
pub use ids::{Bssid, CellId, DeviceId, Essid};
pub use index::{DatasetIndex, DatasetIndexBuilder, IndexColumns};
pub use live::{LiveRow, LiveSnapshot, LiveTableBuilder};
pub use net::{AssocInfo, Band, CellTech, Channel, NetKind, WifiState};
pub use record::{AppCounter, CounterSnapshot, Os, OsVersion, Record, ScanEntry, TrafficCounters};
pub use time::{CivilDate, SimTime, Weekday, Year, BINS_PER_DAY, BIN_MINUTES};
pub use units::{ByteCount, DataRate, Dbm};
pub use wellknown::{is_fon_essid, is_public_essid, PublicProvider};
