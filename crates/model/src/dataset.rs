//! The cleaned dataset consumed by the analysis library.
//!
//! After ingest, dedup and cleaning, the collection pipeline produces a
//! [`Dataset`]: one [`BinRecord`] per device per 10-minute bin, with
//! per-interface *delta* volumes (reconstructed from cumulative counters),
//! the associated AP (interned through an AP table), a compact scan summary,
//! per-app-category volumes (Android), coarse geolocation, and per-device
//! metadata including the post-campaign survey response and — in simulated
//! campaigns — ground-truth labels that let us score the paper's
//! classification heuristics.

use crate::apps::AppCategory;
use crate::ids::{Bssid, CellId, DeviceId, Essid};
use crate::net::{Band, Channel};
use crate::record::{Os, OsVersion};
use crate::time::{CivilDate, SimTime, Year, BINS_PER_DAY};
use crate::units::{ByteCount, Dbm};
use crate::ModelError;
use serde::{Deserialize, Serialize};

/// Cellular carrier (anonymised, as in the paper which never names the
/// three major Japanese providers in its per-carrier comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Carrier {
    /// Largest carrier.
    A,
    /// Second carrier.
    B,
    /// Third carrier.
    C,
}

impl Carrier {
    /// All carriers.
    pub const ALL: [Carrier; 3] = [Carrier::A, Carrier::B, Carrier::C];

    /// Stable index.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Occupation categories from the user survey (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Occupation {
    /// Government worker.
    Government,
    /// Office worker.
    OfficeWorker,
    /// Engineer.
    Engineer,
    /// Worker (other).
    WorkerOther,
    /// Professional.
    Professional,
    /// Self-owned business.
    SelfOwned,
    /// Part timer.
    PartTimer,
    /// Housewife.
    Housewife,
    /// Student.
    Student,
    /// Other.
    Other,
}

impl Occupation {
    /// All occupations in Table 2 order.
    pub const ALL: [Occupation; 10] = [
        Occupation::Government,
        Occupation::OfficeWorker,
        Occupation::Engineer,
        Occupation::WorkerOther,
        Occupation::Professional,
        Occupation::SelfOwned,
        Occupation::PartTimer,
        Occupation::Housewife,
        Occupation::Student,
        Occupation::Other,
    ];

    /// Row label as printed in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            Occupation::Government => "government worker",
            Occupation::OfficeWorker => "office worker",
            Occupation::Engineer => "engineer",
            Occupation::WorkerOther => "worker (other)",
            Occupation::Professional => "professional",
            Occupation::SelfOwned => "self-owned business",
            Occupation::PartTimer => "part timer",
            Occupation::Housewife => "housewife",
            Occupation::Student => "student",
            Occupation::Other => "other",
        }
    }

    /// Does this occupation commute to a workplace on weekdays?
    pub fn commutes(self) -> bool {
        !matches!(self, Occupation::Housewife | Occupation::Other)
    }
}

/// A reference into the dataset's AP table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ApRef(pub u32);

impl ApRef {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One entry of the dataset AP table: a unique (BSSID, ESSID) pair, which is
/// the paper's unit of AP identity (§3.4.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApEntry {
    /// AP radio MAC.
    pub bssid: Bssid,
    /// Network name.
    pub essid: Essid,
}

/// The WiFi association observed in one bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WifiAssoc {
    /// Which AP (interned).
    pub ap: ApRef,
    /// Band of the association.
    pub band: Band,
    /// Channel of the association.
    pub channel: Channel,
    /// Max RSSI observed in the bin.
    pub rssi: Dbm,
}

/// Compact WiFi interface state per bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WifiBinState {
    /// Interface explicitly off.
    Off,
    /// On but unassociated ("WiFi-available" user in that bin).
    OnUnassociated,
    /// Associated.
    Associated(WifiAssoc),
}

impl WifiBinState {
    /// Association, if any.
    pub fn assoc(&self) -> Option<&WifiAssoc> {
        match self {
            WifiBinState::Associated(a) => Some(a),
            _ => None,
        }
    }

    /// Interface enabled?
    pub fn is_on(&self) -> bool {
        !matches!(self, WifiBinState::Off)
    }
}

/// Counts of APs seen in the scan list of one bin, split by band and by the
/// -70 dBm "strong" threshold. `*_public_*` count only public-ESSID APs
/// (used for the §3.5 availability analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScanSummary {
    /// All 2.4 GHz APs detected.
    pub n24_all: u16,
    /// 2.4 GHz APs with RSSI ≥ -70 dBm.
    pub n24_strong: u16,
    /// All 5 GHz APs detected.
    pub n5_all: u16,
    /// 5 GHz APs with RSSI ≥ -70 dBm.
    pub n5_strong: u16,
    /// Public-ESSID 2.4 GHz APs detected.
    pub n24_public_all: u16,
    /// Public-ESSID 2.4 GHz APs with RSSI ≥ -70 dBm.
    pub n24_public_strong: u16,
    /// Public-ESSID 5 GHz APs detected.
    pub n5_public_all: u16,
    /// Public-ESSID 5 GHz APs with RSSI ≥ -70 dBm.
    pub n5_public_strong: u16,
}

impl ScanSummary {
    /// Total APs detected on both bands.
    pub fn total(&self) -> u32 {
        u32::from(self.n24_all) + u32::from(self.n5_all)
    }
}

/// Per-app-category volume within one bin (Android only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppBin {
    /// Application category.
    pub category: AppCategory,
    /// Bytes received in the bin.
    pub rx_bytes: u64,
    /// Bytes transmitted in the bin.
    pub tx_bytes: u64,
}

/// One device × one 10-minute bin of the cleaned dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinRecord {
    /// Device.
    pub device: DeviceId,
    /// Bin start time.
    pub time: SimTime,
    /// 3G downlink bytes in the bin.
    pub rx_3g: u64,
    /// 3G uplink bytes in the bin.
    pub tx_3g: u64,
    /// LTE downlink bytes in the bin.
    pub rx_lte: u64,
    /// LTE uplink bytes in the bin.
    pub tx_lte: u64,
    /// WiFi downlink bytes in the bin.
    pub rx_wifi: u64,
    /// WiFi uplink bytes in the bin.
    pub tx_wifi: u64,
    /// WiFi interface state.
    pub wifi: WifiBinState,
    /// Scan summary (zeroed for iOS).
    pub scan: ScanSummary,
    /// Per-app volumes (empty for iOS).
    pub apps: Vec<AppBin>,
    /// Coarse geolocation.
    pub geo: CellId,
    /// OS version at sample time.
    pub os_version: OsVersion,
}

impl BinRecord {
    /// Total cellular downlink bytes in the bin.
    pub fn rx_cell(&self) -> u64 {
        self.rx_3g + self.rx_lte
    }

    /// Total cellular uplink bytes in the bin.
    pub fn tx_cell(&self) -> u64 {
        self.tx_3g + self.tx_lte
    }

    /// Total downlink bytes in the bin.
    pub fn rx_total(&self) -> u64 {
        self.rx_cell() + self.rx_wifi
    }

    /// Total uplink bytes in the bin.
    pub fn tx_total(&self) -> u64 {
        self.tx_cell() + self.tx_wifi
    }

    /// Downlink volume as [`ByteCount`].
    pub fn rx_total_bytes(&self) -> ByteCount {
        ByteCount::bytes(self.rx_total())
    }
}

/// Ground truth attached to simulated devices, used to *score* the paper's
/// inference heuristics (home/office AP classification) against known labels
/// — an evaluation the original authors could not perform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct GroundTruth {
    /// Radio MACs of the device's true home AP (one per band), if the
    /// household owns one.
    pub home_bssids: Vec<Bssid>,
    /// Radio MACs of the device's true office AP, if the workplace allows
    /// BYOD.
    pub office_bssids: Vec<Bssid>,
    /// Home 5 km cell.
    pub home_cell: CellId,
    /// Office 5 km cell (if the user commutes).
    pub office_cell: Option<CellId>,
}

impl GroundTruth {
    /// Does a BSSID belong to the user's true home AP?
    pub fn is_home_bssid(&self, b: Bssid) -> bool {
        self.home_bssids.contains(&b)
    }

    /// Does a BSSID belong to the user's true office AP?
    pub fn is_office_bssid(&self, b: Bssid) -> bool {
        self.office_bssids.contains(&b)
    }
}

/// Answer to a yes/no survey question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum YesNoNa {
    /// Yes.
    Yes,
    /// No.
    No,
    /// No answer.
    Na,
}

/// Locations asked about in the post-campaign survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SurveyLocation {
    /// At home.
    Home,
    /// At the office.
    Office,
    /// In public spaces.
    Public,
}

impl SurveyLocation {
    /// All locations in table order.
    pub const ALL: [SurveyLocation; 3] =
        [SurveyLocation::Home, SurveyLocation::Office, SurveyLocation::Public];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            SurveyLocation::Home => "home",
            SurveyLocation::Office => "office",
            SurveyLocation::Public => "public",
        }
    }
}

/// Reasons for WiFi unavailability offered in the survey (Table 9).
/// `SecurityIssue` and `LteEnough` were only offered from 2014.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SurveyReason {
    /// "There is no deployment of APs."
    NoAvailableAps,
    /// "Difficult to set up."
    DifficultSetup,
    /// "No configuration."
    NoConfiguration,
    /// "Battery drain."
    BatteryDrain,
    /// "Tried and failed."
    Failed,
    /// "Security concern." (2014+)
    SecurityIssue,
    /// "Communication speed in LTE is enough." (2014+)
    LteEnough,
    /// "Other."
    Other,
}

impl SurveyReason {
    /// All reasons in Table 9 row order.
    pub const ALL: [SurveyReason; 8] = [
        SurveyReason::NoAvailableAps,
        SurveyReason::DifficultSetup,
        SurveyReason::NoConfiguration,
        SurveyReason::BatteryDrain,
        SurveyReason::Failed,
        SurveyReason::SecurityIssue,
        SurveyReason::LteEnough,
        SurveyReason::Other,
    ];

    /// Row label as printed in Table 9.
    pub fn label(self) -> &'static str {
        match self {
            SurveyReason::NoAvailableAps => "No available APs",
            SurveyReason::DifficultSetup => "Difficult to set up",
            SurveyReason::NoConfiguration => "No configuration",
            SurveyReason::BatteryDrain => "Battery drain",
            SurveyReason::Failed => "Failed",
            SurveyReason::SecurityIssue => "Security issue",
            SurveyReason::LteEnough => "LTE is enough",
            SurveyReason::Other => "Other",
        }
    }
}

/// One user's post-campaign survey response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SurveyResponse {
    /// Self-reported occupation.
    pub occupation: Occupation,
    /// "Did you connect to WiFi at «location»?" per location.
    pub connected: [YesNoNa; 3],
    /// "Why did you not connect at «location»?" — multiple answers allowed.
    pub reasons: [Vec<SurveyReason>; 3],
}

/// Per-device metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceInfo {
    /// Device id (index into `Dataset::devices`).
    pub device: DeviceId,
    /// OS.
    pub os: Os,
    /// Carrier.
    pub carrier: Carrier,
    /// Whether the device was recruited (vs organic app-store install).
    pub recruited: bool,
    /// Survey response, if the user answered.
    pub survey: Option<SurveyResponse>,
    /// Simulation ground truth (absent for real datasets).
    pub truth: Option<GroundTruth>,
}

/// Campaign-level metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignMeta {
    /// Which campaign.
    pub year: Year,
    /// First measurement day (midnight JST).
    pub start: CivilDate,
    /// Number of measured days.
    pub days: u32,
    /// Random seed the campaign was generated with (0 for real data).
    pub seed: u64,
}

impl CampaignMeta {
    /// Total number of bins in the campaign window.
    pub fn total_bins(&self) -> u32 {
        self.days * BINS_PER_DAY
    }

    /// Does `t` fall within the campaign window?
    pub fn contains(&self, t: SimTime) -> bool {
        t.day() < self.days
    }
}

/// A cleaned measurement dataset: the input to every analysis in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Campaign metadata.
    pub meta: CampaignMeta,
    /// Per-device metadata, indexed by `DeviceId`.
    pub devices: Vec<DeviceInfo>,
    /// AP table: unique (BSSID, ESSID) pairs referenced by bins.
    pub aps: Vec<ApEntry>,
    /// Bin records, sorted by (device, time).
    pub bins: Vec<BinRecord>,
}

impl Dataset {
    /// Look up an AP entry.
    pub fn ap(&self, r: ApRef) -> &ApEntry {
        &self.aps[r.index()]
    }

    /// Device metadata.
    pub fn device(&self, d: DeviceId) -> &DeviceInfo {
        &self.devices[d.index()]
    }

    /// Number of devices by OS.
    pub fn count_os(&self, os: Os) -> usize {
        self.devices.iter().filter(|d| d.os == os).count()
    }

    /// Iterate bins of one device (relies on (device, time) sort order).
    pub fn device_bins(&self, d: DeviceId) -> impl Iterator<Item = &BinRecord> {
        // Bins are sorted by device then time; binary-search the range.
        let start = self.bins.partition_point(|b| b.device < d);
        self.bins[start..].iter().take_while(move |b| b.device == d)
    }

    /// Validate sort order, reference integrity and time bounds.
    pub fn validate(&self) -> Result<(), ModelError> {
        for (i, dev) in self.devices.iter().enumerate() {
            if dev.device.index() != i {
                return Err(ModelError::Inconsistent(format!(
                    "device table entry {i} has id {}",
                    dev.device
                )));
            }
        }
        let mut prev: Option<(&DeviceId, SimTime)> = None;
        for b in &self.bins {
            if b.device.index() >= self.devices.len() {
                return Err(ModelError::UnknownDevice(b.device));
            }
            if !self.meta.contains(b.time) {
                return Err(ModelError::Inconsistent(format!(
                    "bin at {} outside {}-day window",
                    b.time, self.meta.days
                )));
            }
            if let Some(a) = b.wifi.assoc() {
                if a.ap.index() >= self.aps.len() {
                    return Err(ModelError::Inconsistent(format!(
                        "dangling ApRef {} at {}",
                        a.ap.0, b.time
                    )));
                }
            }
            if let Some((pd, pt)) = prev {
                if b.device < *pd || (b.device == *pd && b.time <= pt) {
                    return Err(ModelError::OutOfOrder { device: b.device });
                }
            }
            prev = Some((&b.device, b.time));
        }
        Ok(())
    }

    /// Total downlink volume across all bins.
    pub fn total_rx(&self) -> ByteCount {
        ByteCount::bytes(self.bins.iter().map(|b| b.rx_total()).sum())
    }

    /// Total uplink volume across all bins.
    pub fn total_tx(&self) -> ByteCount {
        ByteCount::bytes(self.bins.iter().map(|b| b.tx_total()).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        let meta = CampaignMeta {
            year: Year::Y2015,
            start: Year::Y2015.campaign_start(),
            days: 2,
            seed: 1,
        };
        let devices = vec![
            DeviceInfo {
                device: DeviceId(0),
                os: Os::Android,
                carrier: Carrier::A,
                recruited: true,
                survey: None,
                truth: None,
            },
            DeviceInfo {
                device: DeviceId(1),
                os: Os::Ios,
                carrier: Carrier::B,
                recruited: true,
                survey: None,
                truth: None,
            },
        ];
        let aps = vec![ApEntry { bssid: Bssid::from_u64(7), essid: Essid::new("home-ap") }];
        let mk = |dev: u32, minute: u32, wifi_rx: u64| BinRecord {
            device: DeviceId(dev),
            time: SimTime::from_minutes(minute),
            rx_3g: 100,
            tx_3g: 10,
            rx_lte: 1000,
            tx_lte: 100,
            rx_wifi: wifi_rx,
            tx_wifi: wifi_rx / 5,
            wifi: WifiBinState::Associated(WifiAssoc {
                ap: ApRef(0),
                band: Band::Ghz24,
                channel: Channel(6),
                rssi: Dbm::new(-55),
            }),
            scan: ScanSummary::default(),
            apps: vec![],
            geo: CellId::new(0, 0),
            os_version: OsVersion::new(8, 1),
        };
        Dataset { meta, devices, aps, bins: vec![mk(0, 0, 5000), mk(0, 10, 2000), mk(1, 0, 1000)] }
    }

    #[test]
    fn validate_accepts_well_formed() {
        tiny_dataset().validate().unwrap();
    }

    #[test]
    fn validate_rejects_out_of_order() {
        let mut ds = tiny_dataset();
        ds.bins.swap(0, 1);
        assert!(matches!(ds.validate(), Err(ModelError::OutOfOrder { .. })));
    }

    #[test]
    fn validate_rejects_out_of_window() {
        let mut ds = tiny_dataset();
        ds.bins[2].time = SimTime::from_day_minute(5, 0);
        assert!(ds.validate().is_err());
    }

    #[test]
    fn validate_rejects_dangling_ap() {
        let mut ds = tiny_dataset();
        if let WifiBinState::Associated(a) = &mut ds.bins[0].wifi {
            a.ap = ApRef(99);
        }
        assert!(ds.validate().is_err());
    }

    #[test]
    fn device_bins_selects_range() {
        let ds = tiny_dataset();
        assert_eq!(ds.device_bins(DeviceId(0)).count(), 2);
        assert_eq!(ds.device_bins(DeviceId(1)).count(), 1);
    }

    #[test]
    fn totals_sum_interfaces() {
        let ds = tiny_dataset();
        assert_eq!(ds.total_rx().as_bytes(), (100 + 1000) * 3 + 5000 + 2000 + 1000);
        let b = &ds.bins[0];
        assert_eq!(b.rx_cell(), 1100);
        assert_eq!(b.rx_total(), 6100);
    }

    #[test]
    fn count_os_splits() {
        let ds = tiny_dataset();
        assert_eq!(ds.count_os(Os::Android), 1);
        assert_eq!(ds.count_os(Os::Ios), 1);
    }

    #[test]
    fn occupation_labels_and_commuting() {
        assert_eq!(Occupation::ALL.len(), 10);
        assert!(Occupation::OfficeWorker.commutes());
        assert!(!Occupation::Housewife.commutes());
        assert_eq!(Occupation::SelfOwned.label(), "self-owned business");
    }
}
