//! Lane-chunked reduction primitives for the columnar analysis kernels.
//!
//! The hot analysis passes reduce contiguous `u64` counter columns.
//! Written as a plain `iter().sum()` the compiler often keeps a single
//! serial accumulator (the loop-carried dependence limits it to one add
//! per cycle); splitting the reduction into [`LANES`] independent
//! accumulators over `chunks_exact` blocks — with a scalar tail for the
//! remainder — gives the optimizer a loop shape it reliably turns into
//! packed vector adds on any 64-bit target.
//!
//! Integer addition is associative, so the reassociated chunked sums are
//! bit-identical to a sequential fold; every caller is pinned to its
//! row-scan reference by the `columnar_equivalence` proptest suite.

/// Lane width of the chunked reductions. Eight `u64` lanes fill two AVX2
/// registers (four on NEON) without spilling accumulators.
pub const LANES: usize = 8;

/// Lane-chunked sum of a `u64` column.
#[inline]
pub fn sum(xs: &[u64]) -> u64 {
    let mut acc = [0u64; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for c in &mut chunks {
        for (a, &x) in acc.iter_mut().zip(c) {
            *a += x;
        }
    }
    let tail: u64 = chunks.remainder().iter().sum();
    acc.iter().sum::<u64>() + tail
}

/// Lane-chunked sum of the elementwise total of two equal-length columns
/// (a paired rx/tx counter): `Σ (a[i] + b[i])`.
#[inline]
pub fn sum_paired(a: &[u64], b: &[u64]) -> u64 {
    debug_assert_eq!(a.len(), b.len(), "paired columns must be parallel");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0u64; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for k in 0..LANES {
            acc[k] += xa[k] + xb[k];
        }
    }
    let tail: u64 = ca.remainder().iter().zip(cb.remainder()).map(|(&x, &y)| x + y).sum();
    acc.iter().sum::<u64>() + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40).collect()
    }

    #[test]
    fn sum_matches_sequential_fold_for_every_tail_shape() {
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let xs = column(n);
            assert_eq!(sum(&xs), xs.iter().sum::<u64>(), "n = {n}");
        }
    }

    #[test]
    fn sum_paired_matches_sequential_fold_for_every_tail_shape() {
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let a = column(n);
            let b: Vec<u64> = column(n).iter().map(|x| x ^ 0xFF).collect();
            let expect: u64 = a.iter().zip(&b).map(|(&x, &y)| x + y).sum();
            assert_eq!(sum_paired(&a, &b), expect, "n = {n}");
        }
    }
}
