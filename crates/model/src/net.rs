//! Network-interface taxonomy: cellular technologies, WiFi bands, channels,
//! and the WiFi interface state machine as observed by the agent.

use crate::ids::{Bssid, Essid};
use crate::units::Dbm;
use serde::{Deserialize, Serialize};

/// Cellular radio technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CellTech {
    /// 3G (W-CDMA / HSPA-class).
    G3,
    /// 4G LTE.
    Lte,
}

impl CellTech {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CellTech::G3 => "3G",
            CellTech::Lte => "LTE",
        }
    }
}

/// WiFi frequency band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Band {
    /// 2.4 GHz (802.11b/g/n), 13 Japanese channels, longer range, noisier.
    Ghz24,
    /// 5 GHz (802.11a/n/ac), shorter range, cleaner spectrum.
    Ghz5,
}

impl Band {
    /// Human-readable label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Band::Ghz24 => "2.4GHz",
            Band::Ghz5 => "5GHz",
        }
    }

    /// Centre frequency in MHz used for path-loss computations.
    pub fn centre_mhz(self) -> f64 {
        match self {
            Band::Ghz24 => 2437.0, // channel 6
            Band::Ghz5 => 5240.0,  // channel 48
        }
    }
}

/// A WiFi channel number within a band.
///
/// For 2.4 GHz, Japan allows channels 1–13 (14 is 11b-only and excluded
/// here). For 5 GHz we track the common W52/W53/W56 channel numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Channel(pub u8);

impl Channel {
    /// The 13 usable Japanese 2.4 GHz channels.
    pub const GHZ24_ALL: [Channel; 13] = {
        let mut c = [Channel(0); 13];
        let mut i = 0;
        while i < 13 {
            c[i] = Channel(i as u8 + 1);
            i += 1;
        }
        c
    };

    /// The three non-overlapping 2.4 GHz channels public providers plan on.
    pub const GHZ24_ORTHOGONAL: [Channel; 3] = [Channel(1), Channel(6), Channel(11)];

    /// Common Japanese 5 GHz channels (W52 + W53 + a slice of W56).
    pub const GHZ5_COMMON: [Channel; 8] = [
        Channel(36),
        Channel(40),
        Channel(44),
        Channel(48),
        Channel(52),
        Channel(56),
        Channel(100),
        Channel(104),
    ];

    /// Whether two 2.4 GHz channels overlap in spectrum. Channels fewer
    /// than 5 apart share bandwidth and cause cross-channel interference.
    pub fn overlaps_24(self, other: Channel) -> bool {
        (i16::from(self.0) - i16::from(other.0)).abs() < 5
    }

    /// Which band a channel number belongs to.
    pub fn band(self) -> Band {
        if self.0 <= 14 {
            Band::Ghz24
        } else {
            Band::Ghz5
        }
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// Which network a byte of traffic was carried on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NetKind {
    /// Cellular over 3G.
    Cell3g,
    /// Cellular over LTE.
    CellLte,
    /// WiFi (either band).
    Wifi,
}

impl NetKind {
    /// Cellular of either technology?
    pub fn is_cellular(self) -> bool {
        matches!(self, NetKind::Cell3g | NetKind::CellLte)
    }
}

/// The WiFi interface state as sampled by the agent.
///
/// Mirrors the paper's §3.3.4 user categories: a device is a *WiFi-off* user
/// while the interface is disabled, *WiFi-available* while enabled but
/// unassociated, and a *WiFi user* while associated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WifiState {
    /// Interface explicitly turned off by the user.
    Off,
    /// Interface on but not associated to any AP.
    OnUnassociated,
    /// Associated to an AP.
    Associated(AssocInfo),
}

impl WifiState {
    /// Associated AP info, if associated.
    pub fn assoc(&self) -> Option<&AssocInfo> {
        match self {
            WifiState::Associated(a) => Some(a),
            _ => None,
        }
    }

    /// Is the interface enabled (associated or not)?
    pub fn is_on(&self) -> bool {
        !matches!(self, WifiState::Off)
    }
}

/// Details of the currently associated AP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssocInfo {
    /// AP radio MAC.
    pub bssid: Bssid,
    /// Network name.
    pub essid: Essid,
    /// Band of the association.
    pub band: Band,
    /// Channel of the association.
    pub channel: Channel,
    /// Received signal strength at the device.
    pub rssi: Dbm,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_overlap_rule() {
        assert!(Channel(1).overlaps_24(Channel(4)));
        // A five-channel interval (e.g. 1 and 6) is the minimum that avoids
        // cross-channel interference; 1 and 5 still overlap.
        assert!(Channel(1).overlaps_24(Channel(5)));
        assert!(!Channel(1).overlaps_24(Channel(6)));
        assert!(!Channel(6).overlaps_24(Channel(11)));
        assert!(Channel(6).overlaps_24(Channel(6)));
        // Symmetry.
        assert_eq!(Channel(3).overlaps_24(Channel(7)), Channel(7).overlaps_24(Channel(3)));
    }

    #[test]
    fn orthogonal_channels_do_not_overlap() {
        let o = Channel::GHZ24_ORTHOGONAL;
        for i in 0..o.len() {
            for j in 0..o.len() {
                if i != j {
                    assert!(!o[i].overlaps_24(o[j]));
                }
            }
        }
    }

    #[test]
    fn channel_band_inference() {
        assert_eq!(Channel(11).band(), Band::Ghz24);
        assert_eq!(Channel(36).band(), Band::Ghz5);
    }

    #[test]
    fn wifi_state_accessors() {
        assert!(!WifiState::Off.is_on());
        assert!(WifiState::OnUnassociated.is_on());
        assert!(WifiState::Off.assoc().is_none());
        let a = AssocInfo {
            bssid: Bssid::from_u64(1),
            essid: Essid::new("home"),
            band: Band::Ghz24,
            channel: Channel(6),
            rssi: Dbm::new(-54),
        };
        let s = WifiState::Associated(a.clone());
        assert_eq!(s.assoc(), Some(&a));
        assert!(s.is_on());
    }

    #[test]
    fn netkind_cellular() {
        assert!(NetKind::Cell3g.is_cellular());
        assert!(NetKind::CellLte.is_cellular());
        assert!(!NetKind::Wifi.is_cellular());
    }
}
