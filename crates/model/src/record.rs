//! Raw measurement records as produced by the on-device agent.
//!
//! Every 10 minutes the agent snapshots the device's *cumulative* interface
//! counters (mirroring Android `TrafficStats` semantics), the WiFi interface
//! state, the WiFi scan list (Android only), cumulative per-application
//! counters (Android only), battery and coarse geolocation, and queues the
//! record for upload. Volumes per bin are reconstructed downstream from
//! counter deltas, which is what makes the pipeline robust to lost and
//! duplicated uploads.

use crate::ids::{Bssid, CellId, DeviceId, Essid};
use crate::net::{Band, Channel, WifiState};
use crate::time::SimTime;
use crate::units::{ByteCount, Dbm};
use serde::{Deserialize, Serialize};

/// Device operating system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Os {
    /// Android (full telemetry: scans + per-app counters).
    Android,
    /// iOS (no scan list, no per-app counters, only associated-AP info).
    Ios,
}

impl Os {
    /// Label as used in tables.
    pub fn label(self) -> &'static str {
        match self {
            Os::Android => "Android",
            Os::Ios => "iOS",
        }
    }
}

/// Cumulative byte/packet counters for one interface since boot.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize, PartialOrd, Ord, Hash,
)]
pub struct TrafficCounters {
    /// Bytes received (downlink).
    pub rx_bytes: u64,
    /// Bytes transmitted (uplink).
    pub tx_bytes: u64,
    /// Packets received.
    pub rx_pkts: u64,
    /// Packets transmitted.
    pub tx_pkts: u64,
}

impl TrafficCounters {
    /// Add a transfer to the cumulative counters. Packet counts are derived
    /// from an effective packet size so packet-level stats stay plausible.
    pub fn add(&mut self, rx: ByteCount, tx: ByteCount) {
        // Typical mix of MTU-sized data packets and small ACKs.
        const EFFECTIVE_PKT: u64 = 900;
        self.rx_bytes += rx.as_bytes();
        self.tx_bytes += tx.as_bytes();
        self.rx_pkts += rx.as_bytes().div_ceil(EFFECTIVE_PKT);
        self.tx_pkts += tx.as_bytes().div_ceil(EFFECTIVE_PKT);
    }

    /// Counter delta `self - earlier`, or `None` if any counter moved
    /// backwards (i.e. the device rebooted in between).
    pub fn delta_since(&self, earlier: &TrafficCounters) -> Option<TrafficCounters> {
        if self.rx_bytes < earlier.rx_bytes
            || self.tx_bytes < earlier.tx_bytes
            || self.rx_pkts < earlier.rx_pkts
            || self.tx_pkts < earlier.tx_pkts
        {
            return None;
        }
        Some(TrafficCounters {
            rx_bytes: self.rx_bytes - earlier.rx_bytes,
            tx_bytes: self.tx_bytes - earlier.tx_bytes,
            rx_pkts: self.rx_pkts - earlier.rx_pkts,
            tx_pkts: self.tx_pkts - earlier.tx_pkts,
        })
    }

    /// Received volume.
    pub fn rx(&self) -> ByteCount {
        ByteCount::bytes(self.rx_bytes)
    }

    /// Transmitted volume.
    pub fn tx(&self) -> ByteCount {
        ByteCount::bytes(self.tx_bytes)
    }
}

/// Cumulative counters for all interfaces of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// 3G cellular counters.
    pub cell3g: TrafficCounters,
    /// LTE cellular counters.
    pub lte: TrafficCounters,
    /// WiFi counters (both bands).
    pub wifi: TrafficCounters,
}

/// One entry of the WiFi scan list (Android only).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanEntry {
    /// AP radio MAC.
    pub bssid: Bssid,
    /// Network name.
    pub essid: Essid,
    /// Band the beacon was heard on.
    pub band: Band,
    /// Beacon channel.
    pub channel: Channel,
    /// Strongest RSSI observed in the bin.
    pub rssi: Dbm,
}

/// Per-application cumulative counters (Android only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppCounter {
    /// Application category.
    pub category: crate::AppCategory,
    /// Cumulative counters for this category.
    pub counters: TrafficCounters,
}

/// One raw agent record (uploaded every 10 minutes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Device identifier.
    pub device: DeviceId,
    /// Device OS.
    pub os: Os,
    /// Monotonic per-device sequence number (used for dedup).
    pub seq: u32,
    /// Sample time (aligned to a 10-minute bin).
    pub time: SimTime,
    /// Number of reboots seen so far; counters reset when this increments.
    pub boot_epoch: u16,
    /// Cumulative interface counters at sample time.
    pub counters: CounterSnapshot,
    /// WiFi interface state at sample time.
    pub wifi: WifiState,
    /// Scan-list summary (zeroed for iOS). The agent summarises the raw
    /// scan list on-device — in concern for upload volume and privacy, as
    /// with the coarsened geolocation — keeping only per-band counts split
    /// at the -70 dBm threshold and by public-ESSID membership.
    pub scan: crate::dataset::ScanSummary,
    /// Cumulative per-app-category counters (empty for iOS).
    pub apps: Vec<AppCounter>,
    /// Coarse geolocation (5 km cell).
    pub geo: CellId,
    /// Battery percentage 0–100.
    pub battery_pct: u8,
    /// True while the device is acting as a tethering hotspot (such
    /// records are removed during cleaning).
    pub tethering: bool,
    /// OS version string (used to detect the iOS 8.2 update).
    pub os_version: OsVersion,
}

/// A compact two-component OS version.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct OsVersion {
    /// Major version.
    pub major: u8,
    /// Minor version.
    pub minor: u8,
}

impl OsVersion {
    /// Construct a version.
    pub const fn new(major: u8, minor: u8) -> OsVersion {
        OsVersion { major, minor }
    }

    /// The iOS version whose March 2015 rollout the paper analyses (§3.7).
    pub const IOS_8_2: OsVersion = OsVersion::new(8, 2);
}

impl std::fmt::Display for OsVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        let mut c = TrafficCounters::default();
        c.add(ByteCount::kb(9), ByteCount::kb(1));
        let early = c;
        c.add(ByteCount::mb(1), ByteCount::kb(100));
        let d = c.delta_since(&early).unwrap();
        assert_eq!(d.rx_bytes, 1_000_000);
        assert_eq!(d.tx_bytes, 100_000);
        assert!(d.rx_pkts > 0 && d.tx_pkts > 0);
    }

    #[test]
    fn delta_detects_reboot() {
        let mut before = TrafficCounters::default();
        before.add(ByteCount::mb(5), ByteCount::mb(1));
        let after = TrafficCounters::default(); // counters reset at boot
        assert_eq!(after.delta_since(&before), None);
        assert_eq!(before.delta_since(&before), Some(TrafficCounters::default()));
    }

    #[test]
    fn packet_counts_scale_with_bytes() {
        let mut c = TrafficCounters::default();
        c.add(ByteCount::bytes(1), ByteCount::ZERO);
        assert_eq!(c.rx_pkts, 1);
        let mut c2 = TrafficCounters::default();
        c2.add(ByteCount::bytes(9000), ByteCount::ZERO);
        assert_eq!(c2.rx_pkts, 10);
    }

    #[test]
    fn version_ordering() {
        assert!(OsVersion::new(8, 1) < OsVersion::IOS_8_2);
        assert!(OsVersion::new(7, 9) < OsVersion::new(8, 0));
        assert_eq!(OsVersion::IOS_8_2.to_string(), "8.2");
    }
}
