//! Well-known public WiFi network names.
//!
//! The paper identifies *public* networks "based on well known ESSID names
//! (e.g., 0000docomo, 0001softbank, eduroam)" deployed by cellular
//! providers and free/commercial WiFi operators (§3.4.1). This module is
//! the shared taxonomy: the deployment model names its public APs from it
//! and the analysis classifies ESSIDs with it.

use serde::{Deserialize, Serialize};

/// A public WiFi service provider present in the study area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PublicProvider {
    /// Carrier A's customer WiFi (docomo-style `0000...`).
    CarrierA,
    /// Carrier B's customer WiFi (au-style).
    CarrierB,
    /// Carrier C's customer WiFi (softbank-style `0001...`).
    CarrierC,
    /// Academic roaming federation.
    Eduroam,
    /// Convenience-store free WiFi.
    SevenSpot,
    /// Metro (subway) free WiFi.
    MetroFree,
    /// Community/shared-router network; FON APs also announce a private
    /// home ESSID, producing the home/public ambiguity the paper corrects
    /// for.
    Fon,
    /// Municipal/street free WiFi.
    CityFree,
}

impl PublicProvider {
    /// All providers.
    pub const ALL: [PublicProvider; 8] = [
        PublicProvider::CarrierA,
        PublicProvider::CarrierB,
        PublicProvider::CarrierC,
        PublicProvider::Eduroam,
        PublicProvider::SevenSpot,
        PublicProvider::MetroFree,
        PublicProvider::Fon,
        PublicProvider::CityFree,
    ];

    /// The ESSID this provider announces.
    pub fn essid(self) -> &'static str {
        match self {
            PublicProvider::CarrierA => "0000carrier-a",
            PublicProvider::CarrierB => "carrier-b_Wi2",
            PublicProvider::CarrierC => "0001carrier-c",
            PublicProvider::Eduroam => "eduroam",
            PublicProvider::SevenSpot => "7SPOT",
            PublicProvider::MetroFree => "Metro_Free_Wi-Fi",
            PublicProvider::Fon => "FON_FREE_INTERNET",
            PublicProvider::CityFree => "CITY_FREE_Wi-Fi",
        }
    }

    /// Is this provider a cellular carrier's customer-WiFi service?
    /// (These use SIM-based EAP authentication from 2013, §4.2.)
    pub fn is_carrier(self) -> bool {
        matches!(
            self,
            PublicProvider::CarrierA | PublicProvider::CarrierB | PublicProvider::CarrierC
        )
    }
}

/// Is an ESSID a well-known public WiFi network name?
pub fn is_public_essid(essid: &str) -> bool {
    PublicProvider::ALL.iter().any(|p| p.essid() == essid)
}

/// Is an ESSID the FON public name? (Needs the home-FON exception in the
/// AP classifier: a FON AP someone lives with is their *home* network.)
pub fn is_fon_essid(essid: &str) -> bool {
    essid == PublicProvider::Fon.essid()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn provider_essids_unique() {
        let set: HashSet<_> = PublicProvider::ALL.iter().map(|p| p.essid()).collect();
        assert_eq!(set.len(), PublicProvider::ALL.len());
    }

    #[test]
    fn classification_roundtrip() {
        for p in PublicProvider::ALL {
            assert!(is_public_essid(p.essid()), "{}", p.essid());
        }
        assert!(!is_public_essid("aterm-5f3a2c"));
        assert!(!is_public_essid("corp-fl7"));
        assert!(!is_public_essid(""));
    }

    #[test]
    fn three_carrier_services() {
        let carriers = PublicProvider::ALL.iter().filter(|p| p.is_carrier()).count();
        assert_eq!(carriers, 3);
    }

    #[test]
    fn fon_detection() {
        assert!(is_fon_essid("FON_FREE_INTERNET"));
        assert!(!is_fon_essid("0000carrier-a"));
        assert!(is_public_essid("FON_FREE_INTERNET"));
    }
}
