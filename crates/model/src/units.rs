//! Traffic and radio units.
//!
//! Byte counts, data rates and signal strengths appear everywhere in the
//! study; newtypes keep MB/GB conversions and dBm arithmetic explicit and
//! prevent unit mix-ups (the classic "bits vs bytes" bug in traffic reports).

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A non-negative byte count.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteCount(pub u64);

impl ByteCount {
    /// Zero bytes.
    pub const ZERO: ByteCount = ByteCount(0);

    /// From raw bytes.
    pub const fn bytes(n: u64) -> ByteCount {
        ByteCount(n)
    }

    /// From kilobytes (10^3 bytes, as used in traffic reports).
    pub const fn kb(n: u64) -> ByteCount {
        ByteCount(n * 1_000)
    }

    /// From megabytes (10^6 bytes).
    pub const fn mb(n: u64) -> ByteCount {
        ByteCount(n * 1_000_000)
    }

    /// From gigabytes (10^9 bytes).
    pub const fn gb(n: u64) -> ByteCount {
        ByteCount(n * 1_000_000_000)
    }

    /// From a fractional megabyte count (rounded to whole bytes).
    pub fn mb_f64(n: f64) -> ByteCount {
        ByteCount((n.max(0.0) * 1e6).round() as u64)
    }

    /// As raw bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// As fractional megabytes.
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional gigabytes.
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteCount) -> ByteCount {
        ByteCount(self.0.saturating_sub(other.0))
    }

    /// True if zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Average rate if this volume is transferred over `seconds`.
    pub fn over_seconds(self, seconds: f64) -> DataRate {
        assert!(seconds > 0.0, "duration must be positive");
        DataRate::from_bits_per_sec(self.0 as f64 * 8.0 / seconds)
    }
}

impl Add for ByteCount {
    type Output = ByteCount;
    fn add(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0 + rhs.0)
    }
}

impl AddAssign for ByteCount {
    fn add_assign(&mut self, rhs: ByteCount) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteCount {
    type Output = ByteCount;
    /// Panics on underflow in debug builds, like integer subtraction.
    fn sub(self, rhs: ByteCount) -> ByteCount {
        ByteCount(self.0 - rhs.0)
    }
}

impl Sum for ByteCount {
    fn sum<I: Iterator<Item = ByteCount>>(iter: I) -> ByteCount {
        ByteCount(iter.map(|b| b.0).sum())
    }
}

impl std::fmt::Display for ByteCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        if b >= 10_000_000_000 {
            write!(f, "{:.1}GB", self.as_gb())
        } else if b >= 1_000_000 {
            write!(f, "{:.1}MB", self.as_mb())
        } else if b >= 1_000 {
            write!(f, "{:.1}kB", b as f64 / 1e3)
        } else {
            write!(f, "{b}B")
        }
    }
}

/// A data rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct DataRate(f64);

impl DataRate {
    /// From bits per second.
    pub fn from_bits_per_sec(bps: f64) -> DataRate {
        assert!(bps >= 0.0 && bps.is_finite(), "invalid rate {bps}");
        DataRate(bps)
    }

    /// From kilobits per second.
    pub fn kbps(k: f64) -> DataRate {
        DataRate::from_bits_per_sec(k * 1e3)
    }

    /// From megabits per second.
    pub fn mbps(m: f64) -> DataRate {
        DataRate::from_bits_per_sec(m * 1e6)
    }

    /// As bits per second.
    pub fn as_bits_per_sec(self) -> f64 {
        self.0
    }

    /// As megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Volume transferred at this rate over `seconds`.
    pub fn over_seconds(self, seconds: f64) -> ByteCount {
        ByteCount((self.0 * seconds / 8.0).round() as u64)
    }

    /// The smaller of two rates (used when a throttle caps a link rate).
    pub fn min(self, other: DataRate) -> DataRate {
        DataRate(self.0.min(other.0))
    }
}

impl std::fmt::Display for DataRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.2}Mbps", self.0 / 1e6)
        } else {
            write!(f, "{:.0}kbps", self.0 / 1e3)
        }
    }
}

/// A received signal strength in dBm.
///
/// Stored in tenths of a dBm so values stay `Eq`/`Ord` and compact; typical
/// WiFi RSSIs lie in [-95, -20] dBm. The paper's quality threshold is
/// -70 dBm ([`Dbm::WIFI_USABLE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dbm(i16);

impl Dbm {
    /// The -70 dBm threshold above which WiFi connectivity is generally
    /// usable (TCP retransmission probability ≈ 10% at this level, rising
    /// sharply below it).
    pub const WIFI_USABLE: Dbm = Dbm(-700);

    /// From whole dBm.
    pub const fn new(dbm: i16) -> Dbm {
        Dbm(dbm * 10)
    }

    /// From fractional dBm (rounded to 0.1 dBm).
    pub fn from_f64(dbm: f64) -> Dbm {
        let clamped = dbm.clamp(-3276.0, 3276.0);
        Dbm((clamped * 10.0).round() as i16)
    }

    /// As fractional dBm.
    pub fn as_f64(self) -> f64 {
        f64::from(self.0) / 10.0
    }

    /// The raw stored value in tenths of a dBm — the exact wire/on-disk
    /// representation. Round-trips losslessly through
    /// [`from_tenths`](Self::from_tenths).
    pub const fn to_tenths(self) -> i16 {
        self.0
    }

    /// Reconstruct from a raw tenths-of-a-dBm value produced by
    /// [`to_tenths`](Self::to_tenths).
    pub const fn from_tenths(tenths: i16) -> Dbm {
        Dbm(tenths)
    }

    /// True if at least the -70 dBm usability threshold ("strong" in the
    /// paper's public-AP availability analysis).
    pub fn is_strong(self) -> bool {
        self >= Dbm::WIFI_USABLE
    }
}

impl std::fmt::Display for Dbm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}dBm", self.as_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_conversions() {
        assert_eq!(ByteCount::mb(1).as_bytes(), 1_000_000);
        assert_eq!(ByteCount::gb(1), ByteCount::mb(1000));
        assert!((ByteCount::mb(565).as_gb() - 0.565).abs() < 1e-12);
        assert_eq!(ByteCount::mb_f64(1.5).as_bytes(), 1_500_000);
    }

    #[test]
    fn byte_arithmetic() {
        let a = ByteCount::mb(3) + ByteCount::mb(2);
        assert_eq!(a, ByteCount::mb(5));
        assert_eq!(a.saturating_sub(ByteCount::gb(1)), ByteCount::ZERO);
        let total: ByteCount = vec![ByteCount::kb(1), ByteCount::kb(2)].into_iter().sum();
        assert_eq!(total, ByteCount::kb(3));
    }

    #[test]
    fn rate_volume_roundtrip() {
        // 128 kbps over 600 s = 9.6 MB of bits = 9.6e6 bytes... check: 128e3 b/s * 600 s / 8 = 9.6e6 B.
        let v = DataRate::kbps(128.0).over_seconds(600.0);
        assert_eq!(v, ByteCount::bytes(9_600_000));
        let r = ByteCount::mb(60).over_seconds(60.0);
        assert!((r.as_mbps() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn dbm_threshold() {
        assert!(Dbm::new(-54).is_strong());
        assert!(Dbm::new(-70).is_strong());
        assert!(!Dbm::new(-71).is_strong());
        assert!(Dbm::from_f64(-69.9).is_strong());
        assert!(!Dbm::from_f64(-70.1).is_strong());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ByteCount::bytes(12).to_string(), "12B");
        assert_eq!(ByteCount::mb(565).to_string(), "565.0MB");
        assert_eq!(ByteCount::gb(11).to_string(), "11.0GB");
        assert_eq!(DataRate::kbps(128.0).to_string(), "128kbps");
        assert_eq!(Dbm::new(-70).to_string(), "-70.0dBm");
    }
}
