//! Columnar (structure-of-arrays) view of a [`Dataset`].
//!
//! `Dataset::bins` is an array of structs: each [`BinRecord`] is ~150+
//! bytes with a heap-allocated `Vec<AppBin>`, so a pass that touches only
//! two counters still drags the whole record (plus a pointer chase) through
//! cache. [`DatasetColumns`] transposes the bin table once into contiguous
//! per-field columns — six `Vec<u64>` traffic counters, a one-byte WiFi
//! state tag with parallel association columns, the scan summary as eight
//! `u16` columns, and the per-app bins flattened CSR-style (offset array +
//! one flat `Vec<AppBin>`) — so each analysis pass streams exactly the
//! bytes it needs.
//!
//! `Dataset::bins` stays the source of truth: columns are a derived view,
//! built in O(n) by [`DatasetColumns::build`] and valid for as long as the
//! dataset's `bins` vector is unmodified. Row index `i` in every column
//! corresponds to `ds.bins[i]`, so [`DatasetIndex`](crate::DatasetIndex)
//! ranges slice columns directly.

use crate::dataset::{ApRef, AppBin, BinRecord, Dataset, ScanSummary, WifiAssoc, WifiBinState};
use crate::ids::{CellId, DeviceId};
use crate::net::{Band, Channel};
use crate::record::OsVersion;
use crate::time::SimTime;
use crate::units::Dbm;

/// One-byte discriminant of [`WifiBinState`], stored as its own column so
/// state filters scan one byte per bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum WifiTag {
    /// Interface explicitly off.
    Off = 0,
    /// On but unassociated.
    OnUnassociated = 1,
    /// Associated; the `assoc_*` columns hold the association at this row.
    Associated = 2,
}

impl WifiTag {
    /// The tag of a row state.
    pub fn of(state: &WifiBinState) -> WifiTag {
        match state {
            WifiBinState::Off => WifiTag::Off,
            WifiBinState::OnUnassociated => WifiTag::OnUnassociated,
            WifiBinState::Associated(_) => WifiTag::Associated,
        }
    }

    /// Interface enabled? Mirrors [`WifiBinState::is_on`].
    pub fn is_on(self) -> bool {
        !matches!(self, WifiTag::Off)
    }

    /// Decode the on-disk `u8` discriminant; `None` for anything outside
    /// the three defined tags (so corrupt persisted data surfaces as an
    /// error instead of undefined behaviour).
    pub fn from_u8(raw: u8) -> Option<WifiTag> {
        match raw {
            0 => Some(WifiTag::Off),
            1 => Some(WifiTag::OnUnassociated),
            2 => Some(WifiTag::Associated),
            _ => None,
        }
    }
}

/// [`ScanSummary`] transposed into eight `u16` columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanColumns {
    /// All 2.4 GHz APs detected.
    pub n24_all: Vec<u16>,
    /// 2.4 GHz APs with RSSI ≥ -70 dBm.
    pub n24_strong: Vec<u16>,
    /// All 5 GHz APs detected.
    pub n5_all: Vec<u16>,
    /// 5 GHz APs with RSSI ≥ -70 dBm.
    pub n5_strong: Vec<u16>,
    /// Public-ESSID 2.4 GHz APs detected.
    pub n24_public_all: Vec<u16>,
    /// Public-ESSID 2.4 GHz APs with RSSI ≥ -70 dBm.
    pub n24_public_strong: Vec<u16>,
    /// Public-ESSID 5 GHz APs detected.
    pub n5_public_all: Vec<u16>,
    /// Public-ESSID 5 GHz APs with RSSI ≥ -70 dBm.
    pub n5_public_strong: Vec<u16>,
}

impl ScanColumns {
    fn with_capacity(n: usize) -> ScanColumns {
        ScanColumns {
            n24_all: Vec::with_capacity(n),
            n24_strong: Vec::with_capacity(n),
            n5_all: Vec::with_capacity(n),
            n5_strong: Vec::with_capacity(n),
            n24_public_all: Vec::with_capacity(n),
            n24_public_strong: Vec::with_capacity(n),
            n5_public_all: Vec::with_capacity(n),
            n5_public_strong: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, s: &ScanSummary) {
        self.n24_all.push(s.n24_all);
        self.n24_strong.push(s.n24_strong);
        self.n5_all.push(s.n5_all);
        self.n5_strong.push(s.n5_strong);
        self.n24_public_all.push(s.n24_public_all);
        self.n24_public_strong.push(s.n24_public_strong);
        self.n5_public_all.push(s.n5_public_all);
        self.n5_public_strong.push(s.n5_public_strong);
    }

    /// Reconstruct the row-form summary at row `i`.
    pub fn summary(&self, i: usize) -> ScanSummary {
        ScanSummary {
            n24_all: self.n24_all[i],
            n24_strong: self.n24_strong[i],
            n5_all: self.n5_all[i],
            n5_strong: self.n5_strong[i],
            n24_public_all: self.n24_public_all[i],
            n24_public_strong: self.n24_public_strong[i],
            n5_public_all: self.n5_public_all[i],
            n5_public_strong: self.n5_public_strong[i],
        }
    }
}

/// Poison AP reference stored in `assoc_ap` for non-associated rows; any
/// accidental table lookup through it panics instead of aliasing AP 0.
const NO_AP: ApRef = ApRef(u32::MAX);

/// Structure-of-arrays transpose of `Dataset::bins`.
///
/// Every column has one entry per bin record (the CSR `app_offsets` has one
/// extra trailing entry), in the dataset's (device, time) sort order. For
/// non-associated rows the `assoc_*` columns hold filler values that must
/// only be read behind a [`WifiTag::Associated`] check — use
/// [`wifi_assoc`](DatasetColumns::wifi_assoc) unless scanning `wifi_tag`
/// explicitly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatasetColumns {
    /// Device of each bin.
    pub device: Vec<DeviceId>,
    /// Bin start time.
    pub time: Vec<SimTime>,
    /// 3G downlink bytes.
    pub rx_3g: Vec<u64>,
    /// 3G uplink bytes.
    pub tx_3g: Vec<u64>,
    /// LTE downlink bytes.
    pub rx_lte: Vec<u64>,
    /// LTE uplink bytes.
    pub tx_lte: Vec<u64>,
    /// WiFi downlink bytes.
    pub rx_wifi: Vec<u64>,
    /// WiFi uplink bytes.
    pub tx_wifi: Vec<u64>,
    /// WiFi interface state tag.
    pub wifi_tag: Vec<WifiTag>,
    /// Associated AP (`u32::MAX` poison filler when not associated).
    pub assoc_ap: Vec<ApRef>,
    /// Association band (2.4 GHz filler when not associated).
    pub assoc_band: Vec<Band>,
    /// Association channel (channel 0 filler when not associated).
    pub assoc_channel: Vec<Channel>,
    /// Association max RSSI (0 dBm filler when not associated).
    pub assoc_rssi: Vec<Dbm>,
    /// Scan-summary columns.
    pub scan: ScanColumns,
    /// CSR offsets into [`apps`](DatasetColumns::apps): bin `i`'s app
    /// entries are `apps[app_offsets[i]..app_offsets[i + 1]]`. Length is
    /// `len() + 1`.
    pub app_offsets: Vec<u32>,
    /// All per-app-category entries, flattened in bin order.
    pub apps: Vec<AppBin>,
    /// Coarse geolocation.
    pub geo: Vec<CellId>,
    /// OS version at sample time.
    pub os_version: Vec<OsVersion>,
    /// Selection vector: row indexes (ascending) whose `wifi_tag` is
    /// [`WifiTag::Associated`]. Venue/quality passes iterate this instead
    /// of scanning the tag column — same rows in the same order, no
    /// per-row branch.
    pub sel_associated: Vec<u32>,
    /// Selection vector: row indexes (ascending) whose `wifi_tag` is
    /// [`WifiTag::OnUnassociated`] (the "WiFi-available" bins of the
    /// offload analyses).
    pub sel_available: Vec<u32>,
}

impl DatasetColumns {
    /// Transpose `ds.bins` into columns in one pass.
    pub fn build(ds: &Dataset) -> DatasetColumns {
        let n = ds.bins.len();
        let n_apps = ds.bins.iter().map(|b| b.apps.len()).sum();
        let mut c = DatasetColumns {
            device: Vec::with_capacity(n),
            time: Vec::with_capacity(n),
            rx_3g: Vec::with_capacity(n),
            tx_3g: Vec::with_capacity(n),
            rx_lte: Vec::with_capacity(n),
            tx_lte: Vec::with_capacity(n),
            rx_wifi: Vec::with_capacity(n),
            tx_wifi: Vec::with_capacity(n),
            wifi_tag: Vec::with_capacity(n),
            assoc_ap: Vec::with_capacity(n),
            assoc_band: Vec::with_capacity(n),
            assoc_channel: Vec::with_capacity(n),
            assoc_rssi: Vec::with_capacity(n),
            scan: ScanColumns::with_capacity(n),
            app_offsets: Vec::with_capacity(n + 1),
            apps: Vec::with_capacity(n_apps),
            geo: Vec::with_capacity(n),
            os_version: Vec::with_capacity(n),
            sel_associated: Vec::new(),
            sel_available: Vec::new(),
        };
        c.app_offsets.push(0);
        for b in &ds.bins {
            c.push_bin(b);
        }
        c
    }

    /// Empty columns ready for [`push_bin`](DatasetColumns::push_bin)
    /// appends (the CSR offset array needs its leading zero).
    pub(crate) fn new_for_push() -> DatasetColumns {
        let mut c = DatasetColumns::default();
        c.app_offsets.push(0);
        c
    }

    pub(crate) fn push_bin(&mut self, b: &BinRecord) {
        let row = self.device.len() as u32;
        self.device.push(b.device);
        self.time.push(b.time);
        self.rx_3g.push(b.rx_3g);
        self.tx_3g.push(b.tx_3g);
        self.rx_lte.push(b.rx_lte);
        self.tx_lte.push(b.tx_lte);
        self.rx_wifi.push(b.rx_wifi);
        self.tx_wifi.push(b.tx_wifi);
        let tag = WifiTag::of(&b.wifi);
        self.wifi_tag.push(tag);
        match tag {
            WifiTag::Associated => self.sel_associated.push(row),
            WifiTag::OnUnassociated => self.sel_available.push(row),
            WifiTag::Off => {}
        }
        let assoc = b.wifi.assoc();
        self.assoc_ap.push(assoc.map_or(NO_AP, |a| a.ap));
        self.assoc_band.push(assoc.map_or(Band::Ghz24, |a| a.band));
        self.assoc_channel.push(assoc.map_or(Channel(0), |a| a.channel));
        self.assoc_rssi.push(assoc.map_or(Dbm::new(0), |a| a.rssi));
        self.scan.push(&b.scan);
        self.apps.extend_from_slice(&b.apps);
        self.app_offsets.push(self.apps.len() as u32);
        self.geo.push(b.geo);
        self.os_version.push(b.os_version);
    }

    /// Number of bin rows.
    pub fn len(&self) -> usize {
        self.device.len()
    }

    /// True when no bins were transposed.
    pub fn is_empty(&self) -> bool {
        self.device.is_empty()
    }

    /// Total cellular downlink bytes at row `i` (mirrors
    /// [`BinRecord::rx_cell`]).
    pub fn rx_cell(&self, i: usize) -> u64 {
        self.rx_3g[i] + self.rx_lte[i]
    }

    /// Total cellular uplink bytes at row `i` (mirrors
    /// [`BinRecord::tx_cell`]).
    pub fn tx_cell(&self, i: usize) -> u64 {
        self.tx_3g[i] + self.tx_lte[i]
    }

    /// Total downlink bytes at row `i` (mirrors [`BinRecord::rx_total`]).
    pub fn rx_total(&self, i: usize) -> u64 {
        self.rx_cell(i) + self.rx_wifi[i]
    }

    /// Total uplink bytes at row `i` (mirrors [`BinRecord::tx_total`]).
    pub fn tx_total(&self, i: usize) -> u64 {
        self.tx_cell(i) + self.tx_wifi[i]
    }

    /// The associated AP at row `i`, if the bin was associated. Cheaper
    /// than [`wifi_assoc`](DatasetColumns::wifi_assoc) for passes that only
    /// need the AP reference: it touches the tag and AP columns only.
    pub fn assoc_ap_of(&self, i: usize) -> Option<ApRef> {
        (self.wifi_tag[i] == WifiTag::Associated).then(|| self.assoc_ap[i])
    }

    /// The association at row `i`, if the bin was associated.
    pub fn wifi_assoc(&self, i: usize) -> Option<WifiAssoc> {
        (self.wifi_tag[i] == WifiTag::Associated).then(|| WifiAssoc {
            ap: self.assoc_ap[i],
            band: self.assoc_band[i],
            channel: self.assoc_channel[i],
            rssi: self.assoc_rssi[i],
        })
    }

    /// Reconstruct the row-form WiFi state at row `i`.
    pub fn wifi_state(&self, i: usize) -> WifiBinState {
        match self.wifi_tag[i] {
            WifiTag::Off => WifiBinState::Off,
            WifiTag::OnUnassociated => WifiBinState::OnUnassociated,
            WifiTag::Associated => {
                WifiBinState::Associated(self.wifi_assoc(i).expect("tag says associated"))
            }
        }
    }

    /// The per-app entries of bin `i` (empty for iOS bins).
    pub fn apps_of(&self, i: usize) -> &[AppBin] {
        &self.apps[self.app_offsets[i] as usize..self.app_offsets[i + 1] as usize]
    }

    /// Gather a row subset into a new, densely renumbered columnar view.
    ///
    /// `rows` are row indexes into `self` in strictly ascending order (a
    /// selection vector, as produced by a filter compiler). Every column is
    /// copied row by row, the CSR app table is re-flattened, and the
    /// `sel_associated` / `sel_available` selection vectors are rebuilt in
    /// the *new* row numbering — so the result is bit-identical to
    /// [`build`](DatasetColumns::build) over a dataset holding exactly the
    /// selected bins, and feeds
    /// `AnalysisContext::from_parts` without any rebuild scan.
    pub fn gather(&self, rows: &[u32]) -> DatasetColumns {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows must be ascending");
        let n = rows.len();
        let n_apps: usize = rows
            .iter()
            .map(|&r| {
                let i = r as usize;
                (self.app_offsets[i + 1] - self.app_offsets[i]) as usize
            })
            .sum();
        let mut c = DatasetColumns {
            device: Vec::with_capacity(n),
            time: Vec::with_capacity(n),
            rx_3g: Vec::with_capacity(n),
            tx_3g: Vec::with_capacity(n),
            rx_lte: Vec::with_capacity(n),
            tx_lte: Vec::with_capacity(n),
            rx_wifi: Vec::with_capacity(n),
            tx_wifi: Vec::with_capacity(n),
            wifi_tag: Vec::with_capacity(n),
            assoc_ap: Vec::with_capacity(n),
            assoc_band: Vec::with_capacity(n),
            assoc_channel: Vec::with_capacity(n),
            assoc_rssi: Vec::with_capacity(n),
            scan: ScanColumns::with_capacity(n),
            app_offsets: Vec::with_capacity(n + 1),
            apps: Vec::with_capacity(n_apps),
            geo: Vec::with_capacity(n),
            os_version: Vec::with_capacity(n),
            sel_associated: Vec::new(),
            sel_available: Vec::new(),
        };
        c.app_offsets.push(0);
        for (new_row, &r) in rows.iter().enumerate() {
            let i = r as usize;
            c.device.push(self.device[i]);
            c.time.push(self.time[i]);
            c.rx_3g.push(self.rx_3g[i]);
            c.tx_3g.push(self.tx_3g[i]);
            c.rx_lte.push(self.rx_lte[i]);
            c.tx_lte.push(self.tx_lte[i]);
            c.rx_wifi.push(self.rx_wifi[i]);
            c.tx_wifi.push(self.tx_wifi[i]);
            let tag = self.wifi_tag[i];
            c.wifi_tag.push(tag);
            match tag {
                WifiTag::Associated => c.sel_associated.push(new_row as u32),
                WifiTag::OnUnassociated => c.sel_available.push(new_row as u32),
                WifiTag::Off => {}
            }
            c.assoc_ap.push(self.assoc_ap[i]);
            c.assoc_band.push(self.assoc_band[i]);
            c.assoc_channel.push(self.assoc_channel[i]);
            c.assoc_rssi.push(self.assoc_rssi[i]);
            c.scan.push(&self.scan.summary(i));
            c.apps.extend_from_slice(
                &self.apps[self.app_offsets[i] as usize..self.app_offsets[i + 1] as usize],
            );
            c.app_offsets.push(c.apps.len() as u32);
            c.geo.push(self.geo[i]);
            c.os_version.push(self.os_version[i]);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::AppCategory;
    use crate::dataset::*;
    use crate::ids::{Bssid, Essid};
    use crate::record::Os;
    use crate::time::Year;

    fn bin(dev: u32, minute: u32, wifi: WifiBinState, apps: Vec<AppBin>) -> BinRecord {
        BinRecord {
            device: DeviceId(dev),
            time: SimTime::from_minutes(minute),
            rx_3g: 1,
            tx_3g: 2,
            rx_lte: 3,
            tx_lte: 4,
            rx_wifi: 5,
            tx_wifi: 6,
            wifi,
            scan: ScanSummary { n24_all: 7, n5_strong: 8, ..ScanSummary::default() },
            apps,
            geo: CellId::new(1, -2),
            os_version: OsVersion::new(8, 1),
        }
    }

    fn dataset(bins: Vec<BinRecord>) -> Dataset {
        let n_devices = bins.iter().map(|b| b.device.0 + 1).max().unwrap_or(0);
        let mut bins = bins;
        bins.sort_by_key(|b| (b.device, b.time));
        Dataset {
            meta: CampaignMeta {
                year: Year::Y2015,
                start: Year::Y2015.campaign_start(),
                days: 28,
                seed: 0,
            },
            devices: (0..n_devices)
                .map(|i| DeviceInfo {
                    device: DeviceId(i),
                    os: Os::Android,
                    carrier: Carrier::A,
                    recruited: true,
                    survey: None,
                    truth: None,
                })
                .collect(),
            aps: vec![ApEntry { bssid: Bssid::from_u64(1), essid: Essid::new("x") }],
            bins,
        }
    }

    fn assoc() -> WifiBinState {
        WifiBinState::Associated(WifiAssoc {
            ap: ApRef(0),
            band: Band::Ghz5,
            channel: Channel(48),
            rssi: Dbm::new(-62),
        })
    }

    fn app(cat: AppCategory, rx: u64) -> AppBin {
        AppBin { category: cat, rx_bytes: rx, tx_bytes: rx / 2 }
    }

    #[test]
    fn transpose_reconstructs_every_row() {
        let ds = dataset(vec![
            bin(0, 0, WifiBinState::Off, vec![app(AppCategory::Social, 10)]),
            bin(0, 10, assoc(), vec![app(AppCategory::Video, 20), app(AppCategory::Game, 30)]),
            bin(1, 0, WifiBinState::OnUnassociated, vec![]),
        ]);
        let c = DatasetColumns::build(&ds);
        assert_eq!(c.len(), ds.bins.len());
        assert_eq!(c.app_offsets.len(), ds.bins.len() + 1);
        for (i, b) in ds.bins.iter().enumerate() {
            assert_eq!(c.device[i], b.device);
            assert_eq!(c.time[i], b.time);
            assert_eq!(
                (c.rx_3g[i], c.tx_3g[i], c.rx_lte[i], c.tx_lte[i], c.rx_wifi[i], c.tx_wifi[i]),
                (b.rx_3g, b.tx_3g, b.rx_lte, b.tx_lte, b.rx_wifi, b.tx_wifi),
            );
            assert_eq!(c.wifi_state(i), b.wifi);
            assert_eq!(c.wifi_assoc(i).as_ref(), b.wifi.assoc());
            assert_eq!(c.scan.summary(i), b.scan);
            assert_eq!(c.apps_of(i), b.apps.as_slice());
            assert_eq!(c.geo[i], b.geo);
            assert_eq!(c.os_version[i], b.os_version);
            assert_eq!(c.rx_cell(i), b.rx_cell());
            assert_eq!(c.tx_cell(i), b.tx_cell());
            assert_eq!(c.rx_total(i), b.rx_total());
            assert_eq!(c.tx_total(i), b.tx_total());
            assert_eq!(c.assoc_ap_of(i), b.wifi.assoc().map(|a| a.ap));
        }
    }

    #[test]
    fn tags_mirror_states() {
        assert_eq!(WifiTag::of(&WifiBinState::Off), WifiTag::Off);
        assert!(!WifiTag::Off.is_on());
        assert!(WifiTag::OnUnassociated.is_on());
        assert!(WifiTag::Associated.is_on());
    }

    #[test]
    fn empty_dataset_builds_empty_columns() {
        let c = DatasetColumns::build(&dataset(vec![]));
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.app_offsets, vec![0]);
        assert!(c.apps.is_empty());
    }

    #[test]
    fn selection_vectors_partition_wifi_states() {
        let ds = dataset(vec![
            bin(0, 0, WifiBinState::Off, vec![]),
            bin(0, 10, assoc(), vec![]),
            bin(0, 20, WifiBinState::OnUnassociated, vec![]),
            bin(1, 0, assoc(), vec![]),
            bin(1, 10, WifiBinState::OnUnassociated, vec![]),
        ]);
        let c = DatasetColumns::build(&ds);
        let expect = |tag: WifiTag| -> Vec<u32> {
            (0..c.len()).filter(|&i| c.wifi_tag[i] == tag).map(|i| i as u32).collect()
        };
        assert_eq!(c.sel_associated, expect(WifiTag::Associated));
        assert_eq!(c.sel_available, expect(WifiTag::OnUnassociated));
        assert_eq!(
            c.sel_associated.len() + c.sel_available.len(),
            c.wifi_tag.iter().filter(|t| t.is_on()).count()
        );
    }

    /// `gather` over any ascending subset must equal `build` over a
    /// dataset holding exactly those bins — CSR and selection vectors
    /// included.
    #[test]
    fn gather_matches_build_over_subset() {
        let bins = vec![
            bin(0, 0, WifiBinState::Off, vec![app(AppCategory::Social, 10)]),
            bin(0, 10, assoc(), vec![app(AppCategory::Video, 20), app(AppCategory::Game, 30)]),
            bin(0, 20, WifiBinState::OnUnassociated, vec![]),
            bin(1, 0, assoc(), vec![app(AppCategory::Browser, 5)]),
            bin(1, 10, WifiBinState::OnUnassociated, vec![]),
            bin(1, 20, WifiBinState::Off, vec![]),
        ];
        let ds = dataset(bins);
        let full = DatasetColumns::build(&ds);
        let subsets: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![1, 3],
            vec![0, 2, 4, 5],
            (0..ds.bins.len() as u32).collect(),
        ];
        for rows in subsets {
            let gathered = full.gather(&rows);
            let sub_ds = dataset(rows.iter().map(|&r| ds.bins[r as usize].clone()).collect());
            let rebuilt = DatasetColumns::build(&sub_ds);
            assert_eq!(gathered, rebuilt, "subset {rows:?}");
        }
    }

    #[test]
    fn csr_concatenates_in_bin_order() {
        let ds = dataset(vec![
            bin(0, 0, WifiBinState::Off, vec![app(AppCategory::Social, 1)]),
            bin(0, 10, WifiBinState::Off, vec![]),
            bin(
                0,
                20,
                WifiBinState::Off,
                vec![app(AppCategory::Video, 2), app(AppCategory::Browser, 3)],
            ),
        ]);
        let c = DatasetColumns::build(&ds);
        assert_eq!(c.app_offsets, vec![0, 1, 1, 3]);
        assert_eq!(c.apps.len(), 3);
        assert!(c.apps_of(1).is_empty());
        assert_eq!(c.apps_of(2).len(), 2);
    }
}
