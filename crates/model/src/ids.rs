//! Identifiers: devices, WiFi APs, and geographic grid cells.

use serde::{Deserialize, Serialize};

/// The unique random device identifier assigned by the measurement software.
///
/// The real agent generates a random opaque ID per installation; in the
/// simulator IDs are dense indexes into the campaign population, which keeps
/// dataset storage compact without changing any analysis semantics.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DeviceId(pub u32);

impl DeviceId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{:05}", self.0)
    }
}

/// A WiFi BSSID: the MAC address of an access point radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bssid(pub [u8; 6]);

impl Bssid {
    /// Build a locally-administered unicast BSSID from a 40-bit value,
    /// imitating the per-radio MACs real vendors assign. The top byte is
    /// fixed to `0x02` (locally administered, unicast).
    pub fn from_u64(v: u64) -> Bssid {
        let b = v.to_be_bytes();
        Bssid([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Pack into a u64 for compact storage (upper 16 bits zero).
    pub fn as_u64(self) -> u64 {
        let mut b = [0u8; 8];
        b[2..8].copy_from_slice(&self.0);
        u64::from_be_bytes(b)
    }

    /// The OUI (vendor prefix) — first three octets.
    pub fn oui(self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }
}

impl std::fmt::Display for Bssid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3], b[4], b[5])
    }
}

/// A WiFi ESSID (network name).
///
/// ESSIDs drive the paper's public-network taxonomy (`0000docomo`,
/// `0001softbank`, `eduroam`, …), so we keep the real string rather than an
/// opaque id. The name is shared (`Arc<str>`): one AP's ESSID appears in
/// every association record of every device that ever joins it, so a clone
/// is a reference-count bump rather than a fresh heap string. Serialization
/// stays a plain JSON string.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Essid(std::sync::Arc<str>);

impl Essid {
    /// Construct from anything string-like.
    pub fn new(s: impl Into<String>) -> Essid {
        Essid(s.into().into())
    }

    /// The raw network name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether two ESSIDs share the same backing allocation (an interner
    /// property — equality of contents is just `==`).
    pub fn ptr_eq(a: &Essid, b: &Essid) -> bool {
        std::sync::Arc::ptr_eq(&a.0, &b.0)
    }
}

impl std::fmt::Display for Essid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Serialize for Essid {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.0)
    }
}

impl<'de> Deserialize<'de> for Essid {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Essid, D::Error> {
        Ok(Essid::new(String::deserialize(d)?))
    }
}

/// A 5 km × 5 km grid cell of the Greater Tokyo area.
///
/// The agent reports geolocation at 5 km precision for privacy; the grid
/// geometry itself (origin, extent, geodesy) lives in `mobitrace-geo`. Here
/// we only need a compact, hashable coordinate pair.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CellId {
    /// East-west cell index (increasing eastwards).
    pub x: i16,
    /// North-south cell index (increasing northwards).
    pub y: i16,
}

impl CellId {
    /// Construct from indexes.
    pub fn new(x: i16, y: i16) -> CellId {
        CellId { x, y }
    }

    /// Chebyshev (king-move) distance in cells; adjacent including
    /// diagonals is 1.
    pub fn chebyshev(self, other: CellId) -> u32 {
        let dx = (i32::from(self.x) - i32::from(other.x)).unsigned_abs();
        let dy = (i32::from(self.y) - i32::from(other.y)).unsigned_abs();
        dx.max(dy)
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bssid_roundtrip_and_format() {
        let b = Bssid::from_u64(0xAB_CD_EF_12_34);
        assert_eq!(b.to_string(), "02:ab:cd:ef:12:34");
        assert_eq!(Bssid::from_u64(b.as_u64() & 0xFF_FF_FF_FF_FF), b);
        assert_eq!(b.oui(), [0x02, 0xab, 0xcd]);
    }

    #[test]
    fn bssid_locally_administered() {
        let b = Bssid::from_u64(123456);
        // Locally administered bit set, multicast bit clear.
        assert_eq!(b.0[0] & 0b10, 0b10);
        assert_eq!(b.0[0] & 0b01, 0);
    }

    #[test]
    fn cell_distance() {
        let a = CellId::new(0, 0);
        assert_eq!(a.chebyshev(CellId::new(3, -2)), 3);
        assert_eq!(a.chebyshev(a), 0);
        assert_eq!(CellId::new(-5, 4).chebyshev(CellId::new(-4, 4)), 1);
    }

    #[test]
    fn essid_display() {
        assert_eq!(Essid::new("0000docomo").to_string(), "0000docomo");
    }

    #[test]
    fn essid_serde_is_plain_string() {
        let e = Essid::new("eduroam");
        assert_eq!(serde_json::to_string(&e).unwrap(), "\"eduroam\"");
        let back: Essid = serde_json::from_str("\"eduroam\"").unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn essid_clone_shares_allocation() {
        let e = Essid::new("0001softbank");
        let c = e.clone();
        assert!(std::ptr::eq(e.as_str(), c.as_str()), "clone must share the backing str");
    }
}
