//! Simulation time.
//!
//! The measurement campaigns run on a 10-minute sampling grid in Japan
//! Standard Time (JST, UTC+9, no daylight saving). We represent time as
//! minutes since the campaign epoch ([`SimTime`]) and map it to civil dates
//! through [`CivilDate`] using the days-from-civil algorithm, so that the
//! analysis can reason about weekdays, commute hours and specific calendar
//! days (e.g. the iOS 8.2 release on 2015-03-10) without an external date
//! library.

use serde::{Deserialize, Serialize};

/// Length of one sampling bin in minutes (the agent samples every 10 min).
pub const BIN_MINUTES: u32 = 10;

/// Number of sampling bins in one day.
pub const BINS_PER_DAY: u32 = 24 * 60 / BIN_MINUTES;

/// Measurement campaign year. The paper ran three campaigns, each in
/// February/March of 2013, 2014 and 2015 (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Year {
    /// 07 Mar - 22 Mar 2013 campaign (1755 devices, 25% LTE).
    Y2013,
    /// 28 Feb - 22 Mar 2014 campaign (1676 devices, 70% LTE).
    Y2014,
    /// 25 Feb - 25 Mar 2015 campaign (1616 devices, 80% LTE).
    Y2015,
}

impl Year {
    /// All campaign years in chronological order.
    pub const ALL: [Year; 3] = [Year::Y2013, Year::Y2014, Year::Y2015];

    /// The calendar year as a number.
    pub fn as_u16(self) -> u16 {
        match self {
            Year::Y2013 => 2013,
            Year::Y2014 => 2014,
            Year::Y2015 => 2015,
        }
    }

    /// Campaign start date (first full measurement day).
    ///
    /// We align every campaign to start on a Saturday so the weekly figures
    /// (which the paper draws Saturday-to-Saturday) line up across years:
    /// 2013-03-09, 2014-03-01 and 2015-02-28 are all Saturdays within the
    /// paper's measurement windows.
    pub fn campaign_start(self) -> CivilDate {
        match self {
            Year::Y2013 => CivilDate::new(2013, 3, 9),
            Year::Y2014 => CivilDate::new(2014, 3, 1),
            Year::Y2015 => CivilDate::new(2015, 2, 28),
        }
    }

    /// Zero-based index of the campaign (2013 → 0).
    pub fn index(self) -> usize {
        match self {
            Year::Y2013 => 0,
            Year::Y2014 => 1,
            Year::Y2015 => 2,
        }
    }
}

impl std::fmt::Display for Year {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_u16())
    }
}

/// Day of week. `Monday == 0` through `Sunday == 6`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Weekday {
    /// Monday.
    Mon,
    /// Tuesday.
    Tue,
    /// Wednesday.
    Wed,
    /// Thursday.
    Thu,
    /// Friday.
    Fri,
    /// Saturday.
    Sat,
    /// Sunday.
    Sun,
}

impl Weekday {
    /// Construct from `0 == Monday` … `6 == Sunday`.
    pub fn from_index(i: u32) -> Weekday {
        match i % 7 {
            0 => Weekday::Mon,
            1 => Weekday::Tue,
            2 => Weekday::Wed,
            3 => Weekday::Thu,
            4 => Weekday::Fri,
            5 => Weekday::Sat,
            _ => Weekday::Sun,
        }
    }

    /// `0 == Monday` … `6 == Sunday`.
    pub fn index(self) -> u32 {
        self as u32
    }

    /// Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Sat | Weekday::Sun)
    }

    /// Three-letter English abbreviation, as used in the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
            Weekday::Sun => "Sun",
        }
    }
}

/// A proleptic-Gregorian civil date (JST).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CivilDate {
    /// Calendar year, e.g. 2015.
    pub year: i32,
    /// Month, 1–12.
    pub month: u8,
    /// Day of month, 1–31.
    pub day: u8,
}

impl CivilDate {
    /// Construct a date. Panics on an obviously invalid month/day so that
    /// hard-coded campaign dates fail fast.
    pub fn new(year: i32, month: u8, day: u8) -> CivilDate {
        assert!((1..=12).contains(&month), "invalid month {month}");
        assert!((1..=31).contains(&day), "invalid day {day}");
        CivilDate { year, month, day }
    }

    /// Days since 1970-01-01 (may be negative), via the days-from-civil
    /// algorithm (Howard Hinnant, "chrono-compatible low-level date
    /// algorithms").
    pub fn days_from_epoch(self) -> i64 {
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as u64; // [0, 399]
        let m = i64::from(self.month);
        let d = u64::from(self.day);
        let doy = ((153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5) as u64 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146097 + doe as i64 - 719468
    }

    /// Inverse of [`days_from_epoch`](Self::days_from_epoch).
    pub fn from_days_from_epoch(z: i64) -> CivilDate {
        let z = z + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = (z - era * 146097) as u64; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe as i64 + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        CivilDate::new(y as i32 + i64::from(m <= 2) as i32, m, d)
    }

    /// Weekday of this date (1970-01-01 was a Thursday).
    pub fn weekday(self) -> Weekday {
        let days = self.days_from_epoch();
        // 1970-01-01 = Thursday = index 3 (Mon=0).
        Weekday::from_index(((days % 7 + 7) % 7 + 3) as u32)
    }

    /// The date `n` days after this one.
    pub fn plus_days(self, n: i64) -> CivilDate {
        CivilDate::from_days_from_epoch(self.days_from_epoch() + n)
    }
}

impl std::fmt::Display for CivilDate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A point in campaign time: minutes since local midnight of the campaign
/// start date (JST). All agent samples are aligned to `BIN_MINUTES`
/// boundaries, but `SimTime` itself is minute-granular so transport delays
/// can be modelled.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime {
    /// Minutes since campaign epoch (midnight JST of day 0).
    pub minute: u32,
}

impl SimTime {
    /// Campaign epoch.
    pub const ZERO: SimTime = SimTime { minute: 0 };

    /// From raw minutes since epoch.
    pub fn from_minutes(minute: u32) -> SimTime {
        SimTime { minute }
    }

    /// From a day index and a minute-of-day.
    pub fn from_day_minute(day: u32, minute_of_day: u32) -> SimTime {
        SimTime { minute: day * 24 * 60 + minute_of_day }
    }

    /// From a day index and a bin index within the day.
    pub fn from_day_bin(day: u32, bin: u32) -> SimTime {
        SimTime::from_day_minute(day, bin * BIN_MINUTES)
    }

    /// Campaign day index (0-based).
    pub fn day(self) -> u32 {
        self.minute / (24 * 60)
    }

    /// Minute within the day, `0..1440`.
    pub fn minute_of_day(self) -> u32 {
        self.minute % (24 * 60)
    }

    /// Hour of day, `0..24`.
    pub fn hour(self) -> u32 {
        self.minute_of_day() / 60
    }

    /// Sampling-bin index within the day, `0..BINS_PER_DAY`.
    pub fn bin_of_day(self) -> u32 {
        self.minute_of_day() / BIN_MINUTES
    }

    /// Global sampling-bin index since the campaign epoch.
    pub fn global_bin(self) -> u32 {
        self.minute / BIN_MINUTES
    }

    /// Round down to the enclosing sampling bin.
    pub fn align_to_bin(self) -> SimTime {
        SimTime { minute: self.minute - self.minute % BIN_MINUTES }
    }

    /// The time `m` minutes later.
    pub fn plus_minutes(self, m: u32) -> SimTime {
        SimTime { minute: self.minute + m }
    }

    /// Civil date of this time given the campaign start date.
    pub fn date(self, campaign_start: CivilDate) -> CivilDate {
        campaign_start.plus_days(i64::from(self.day()))
    }

    /// Weekday of this time given the campaign start date.
    pub fn weekday(self, campaign_start: CivilDate) -> Weekday {
        self.date(campaign_start).weekday()
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}+{:02}:{:02}", self.day(), self.hour(), self.minute_of_day() % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_thursday() {
        assert_eq!(CivilDate::new(1970, 1, 1).weekday(), Weekday::Thu);
        assert_eq!(CivilDate::new(1970, 1, 1).days_from_epoch(), 0);
    }

    #[test]
    fn campaign_starts_are_saturdays() {
        for y in Year::ALL {
            assert_eq!(y.campaign_start().weekday(), Weekday::Sat, "{y}");
        }
    }

    #[test]
    fn known_dates_roundtrip() {
        let cases = [
            (CivilDate::new(2015, 3, 10), Weekday::Tue), // iOS 8.2 release
            (CivilDate::new(2013, 3, 9), Weekday::Sat),
            (CivilDate::new(2000, 2, 29), Weekday::Tue), // leap day
            (CivilDate::new(1999, 12, 31), Weekday::Fri),
            (CivilDate::new(2016, 2, 29), Weekday::Mon),
        ];
        for (d, wd) in cases {
            assert_eq!(d.weekday(), wd, "{d}");
            assert_eq!(CivilDate::from_days_from_epoch(d.days_from_epoch()), d);
        }
    }

    #[test]
    fn plus_days_crosses_month_boundary() {
        let d = CivilDate::new(2015, 2, 28).plus_days(1);
        assert_eq!(d, CivilDate::new(2015, 3, 1));
        let d = CivilDate::new(2012, 2, 28).plus_days(1);
        assert_eq!(d, CivilDate::new(2012, 2, 29));
    }

    #[test]
    fn simtime_decomposition() {
        let t = SimTime::from_day_minute(3, 605); // day 3, 10:05
        assert_eq!(t.day(), 3);
        assert_eq!(t.hour(), 10);
        assert_eq!(t.minute_of_day(), 605);
        assert_eq!(t.bin_of_day(), 60);
        assert_eq!(t.align_to_bin().minute_of_day(), 600);
    }

    #[test]
    fn simtime_weekday_tracks_campaign_start() {
        let start = Year::Y2015.campaign_start();
        assert_eq!(SimTime::from_day_minute(0, 0).weekday(start), Weekday::Sat);
        assert_eq!(SimTime::from_day_minute(2, 0).weekday(start), Weekday::Mon);
        // 2015-03-10 is day 10 of the 2015 campaign.
        assert_eq!(SimTime::from_day_minute(10, 0).date(start), CivilDate::new(2015, 3, 10));
    }

    #[test]
    fn bins_per_day_consistent() {
        assert_eq!(BINS_PER_DAY, 144);
        assert_eq!(SimTime::from_day_bin(1, 0).global_bin(), BINS_PER_DAY);
    }

    proptest! {
        #[test]
        fn civil_date_epoch_roundtrip(z in -1_000_000i64..1_000_000) {
            let d = CivilDate::from_days_from_epoch(z);
            prop_assert_eq!(d.days_from_epoch(), z);
            prop_assert!((1..=12).contains(&d.month));
            prop_assert!((1..=31).contains(&d.day));
        }

        #[test]
        fn plus_days_is_additive(z in -100_000i64..100_000, a in 0i64..1000, b in 0i64..1000) {
            let d = CivilDate::from_days_from_epoch(z);
            prop_assert_eq!(d.plus_days(a).plus_days(b), d.plus_days(a + b));
        }

        #[test]
        fn consecutive_days_have_consecutive_weekdays(z in -100_000i64..100_000) {
            let d = CivilDate::from_days_from_epoch(z);
            let next = d.plus_days(1);
            prop_assert_eq!(
                (d.weekday().index() + 1) % 7,
                next.weekday().index()
            );
        }

        #[test]
        fn simtime_decomposition_consistent(minute in 0u32..10_000_000) {
            let t = SimTime::from_minutes(minute);
            prop_assert_eq!(
                SimTime::from_day_minute(t.day(), t.minute_of_day()),
                t
            );
            prop_assert_eq!(t.bin_of_day(), t.minute_of_day() / BIN_MINUTES);
            prop_assert!(t.hour() < 24);
            prop_assert_eq!(t.align_to_bin().minute % BIN_MINUTES, 0);
            prop_assert!(t.align_to_bin().minute <= t.minute);
            prop_assert!(t.minute - t.align_to_bin().minute < BIN_MINUTES);
        }
    }
}
