//! Error types shared across the workspace.

/// Errors produced while validating or assembling model data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A record carried a counter that moved backwards without a reboot
    /// marker — corrupt data.
    CounterRegression {
        /// Offending device.
        device: crate::DeviceId,
        /// Sequence number of the offending record.
        seq: u32,
    },
    /// A record referenced an unknown device.
    UnknownDevice(crate::DeviceId),
    /// Records for a device were not in time order after ingest sorting —
    /// indicates a server bug.
    OutOfOrder {
        /// Offending device.
        device: crate::DeviceId,
    },
    /// Dataset metadata was inconsistent (e.g. a bin time outside the
    /// campaign window).
    Inconsistent(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::CounterRegression { device, seq } => {
                write!(f, "counter regression on {device} at seq {seq}")
            }
            ModelError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            ModelError::OutOfOrder { device } => write!(f, "records out of order for {device}"),
            ModelError::Inconsistent(msg) => write!(f, "inconsistent dataset: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceId;

    #[test]
    fn display_messages() {
        let e = ModelError::CounterRegression { device: DeviceId(3), seq: 7 };
        assert!(e.to_string().contains("dev00003"));
        assert!(e.to_string().contains("seq 7"));
        assert!(ModelError::Inconsistent("x".into()).to_string().contains("x"));
    }
}
