//! Incremental dataset construction for the streaming analysis engine.
//!
//! The batch pipeline builds its products in three passes: `clean` sorts
//! and interns everything into a [`Dataset`], then [`DatasetIndex::build`]
//! and [`DatasetColumns::build`] each re-scan the bin table. A live
//! consumer cannot afford any of those full scans per update, so this
//! module keeps the dataset in LSM style instead:
//!
//! * appends land in cheap per-device *tail* vectors ([`LiveRow`] keeps the
//!   association un-interned, because the canonical AP numbering is a
//!   whole-dataset property);
//! * retroactive removals (the iOS-update-day rule discovers its victim
//!   days *after* their bins were appended) are recorded as per-device day
//!   **tombstones** and only counted logically;
//! * a periodic **compaction** — amortised O(1) per appended row by a
//!   tail-vs-merged size trigger — folds tails and tombstones into a fresh
//!   sorted run and emits a [`LiveSnapshot`]: the bins, the canonical
//!   first-encounter AP table, the bin-range index and the columnar
//!   transpose, all built in the same single walk via
//!   [`DatasetIndexBuilder`] and the columnar push path.
//!
//! Snapshots are plain owned values; the engine wraps them in `Arc` so
//! readers get copy-on-write semantics — a snapshot taken between
//! compactions is a pointer clone, never a rebuild. After the final
//! compaction the snapshot is bit-identical to what the batch pipeline
//! produces from the same cleaned records, which the live engine's
//! convergence proof asserts.

use crate::columns::DatasetColumns;
use crate::dataset::{
    ApEntry, ApRef, AppBin, BinRecord, CampaignMeta, Dataset, DeviceInfo, ScanSummary, WifiAssoc,
    WifiBinState,
};
use crate::ids::{CellId, DeviceId};
use crate::index::{DatasetIndex, DatasetIndexBuilder};
use crate::net::WifiState;
use crate::record::OsVersion;
use crate::time::SimTime;
use std::collections::HashMap;
use std::ops::Range;

/// Compaction trigger: compact once the tails hold at least this many rows
/// *and* at least half as many as the merged run. The multiplicative part
/// makes total compaction work linear in the final row count; the additive
/// floor stops tiny datasets from compacting after every batch.
const COMPACT_MIN_TAIL: usize = 1024;

/// One cleaned bin awaiting compaction. Identical to [`BinRecord`] except
/// that the WiFi association still carries the raw (BSSID, ESSID) identity:
/// AP references are only assigned at compaction time, where the canonical
/// first-encounter order over the *surviving* rows is known.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveRow {
    /// Device.
    pub device: DeviceId,
    /// Bin start time.
    pub time: SimTime,
    /// 3G downlink bytes in the bin.
    pub rx_3g: u64,
    /// 3G uplink bytes in the bin.
    pub tx_3g: u64,
    /// LTE downlink bytes in the bin.
    pub rx_lte: u64,
    /// LTE uplink bytes in the bin.
    pub tx_lte: u64,
    /// WiFi downlink bytes in the bin.
    pub rx_wifi: u64,
    /// WiFi uplink bytes in the bin.
    pub tx_wifi: u64,
    /// Raw WiFi state (association not yet interned).
    pub wifi: WifiState,
    /// Scan summary.
    pub scan: ScanSummary,
    /// Per-app volumes.
    pub apps: Vec<AppBin>,
    /// Coarse geolocation.
    pub geo: CellId,
    /// OS version at sample time.
    pub os_version: OsVersion,
}

/// One published state of the live dataset: the cleaned [`Dataset`] plus
/// the two derived views every columnar analysis pass needs, all consistent
/// with each other. The engine hands these out behind an `Arc`, so taking a
/// snapshot costs a reference count, not a copy.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveSnapshot {
    /// The cleaned dataset as of the last compaction.
    pub ds: Dataset,
    /// Per-device / per-day bin ranges over `ds.bins`.
    pub index: DatasetIndex,
    /// Columnar transpose of `ds.bins`.
    pub cols: DatasetColumns,
    /// Compactions performed so far (including the one that produced this).
    pub compactions: u64,
}

impl LiveSnapshot {
    /// Bin rows in this snapshot.
    pub fn len(&self) -> usize {
        self.ds.bins.len()
    }

    /// True when the snapshot holds no bins.
    pub fn is_empty(&self) -> bool {
        self.ds.bins.is_empty()
    }
}

/// LSM-style builder behind the live engine: per-device tail appends, day
/// tombstones, periodic compaction into a [`LiveSnapshot`].
///
/// Rows must be appended per device in ascending time order (the engine's
/// watermark discipline guarantees it); across devices any interleaving is
/// fine.
#[derive(Debug)]
pub struct LiveTableBuilder {
    meta: CampaignMeta,
    devices: Vec<DeviceInfo>,
    /// Rows already compacted, sorted by (device, time), tombstones applied.
    merged: Vec<LiveRow>,
    /// Per-device range into `merged`.
    merged_ranges: Vec<Range<usize>>,
    /// Per-device uncompacted appends, each in ascending time order.
    tails: Vec<Vec<LiveRow>>,
    /// Rows across all tails.
    tail_rows: usize,
    /// Update day per device: bins on `d` and `d + 1` are dead. Applied
    /// logically on registration, physically at the next compaction.
    tombs: Vec<Option<u32>>,
    /// Rows in `merged` that tombstones have logically removed (they stop
    /// counting toward `len`, and compaction will drop them).
    dead_merged: usize,
    compactions: u64,
    /// Additive compaction floor (tests shrink it to force compactions).
    compact_min_tail: usize,
}

impl LiveTableBuilder {
    /// New builder over a fixed device table. Every appended row's device
    /// must index into `devices`.
    pub fn new(meta: CampaignMeta, devices: Vec<DeviceInfo>) -> LiveTableBuilder {
        let n = devices.len();
        LiveTableBuilder {
            meta,
            devices,
            merged: Vec::new(),
            merged_ranges: vec![0..0; n],
            tails: (0..n).map(|_| Vec::new()).collect(),
            tail_rows: 0,
            tombs: vec![None; n],
            dead_merged: 0,
            compactions: 0,
            compact_min_tail: COMPACT_MIN_TAIL,
        }
    }

    /// Override the additive compaction floor (test hook — a floor of 1
    /// compacts as aggressively as the size ratio allows).
    pub fn with_compact_min_tail(mut self, min_tail: usize) -> LiveTableBuilder {
        self.compact_min_tail = min_tail.max(1);
        self
    }

    /// Replace the device table (same length). The campaign runner only
    /// learns survey answers and ground truth after the last device
    /// finishes, so the engine installs the real table just before the
    /// final compaction.
    pub fn install_devices(&mut self, devices: Vec<DeviceInfo>) {
        assert_eq!(devices.len(), self.devices.len(), "device table size changed");
        self.devices = devices;
    }

    /// Number of devices in the table.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Live rows (appended minus tombstoned).
    pub fn len(&self) -> usize {
        self.merged.len() - self.dead_merged + self.tail_rows
    }

    /// True when no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Append one cleaned row to its device tail.
    pub fn append(&mut self, row: LiveRow) {
        let d = row.device.index();
        debug_assert!(
            self.tails[d].last().is_none_or(|p| p.time < row.time),
            "tail appends must be in ascending time order"
        );
        self.tails[d].push(row);
        self.tail_rows += 1;
    }

    /// Register a device's iOS-update day: rows on `day` and `day + 1` are
    /// logically removed now and physically dropped at the next compaction.
    /// Returns how many already-appended rows the tombstone killed.
    pub fn tombstone_update_day(&mut self, device: DeviceId, day: u32) -> u64 {
        let d = device.index();
        debug_assert!(self.tombs[d].is_none(), "one update day per device");
        self.tombs[d] = Some(day);
        let dead = |r: &LiveRow| {
            let rd = r.time.day();
            rd == day || rd == day + 1
        };
        let in_merged =
            self.merged[self.merged_ranges[d].clone()].iter().filter(|r| dead(r)).count();
        let in_tail = self.tails[d].iter().filter(|r| dead(r)).count();
        self.dead_merged += in_merged;
        // Dead tail rows are filtered at compaction; stop counting them now.
        self.tails[d].retain(|r| !dead(r));
        self.tail_rows -= in_tail;
        (in_merged + in_tail) as u64
    }

    /// Whether enough tail rows have piled up to amortise a compaction.
    pub fn should_compact(&self) -> bool {
        self.tail_rows >= self.compact_min_tail
            && self.tail_rows * 2 >= self.merged.len() - self.dead_merged
    }

    /// Fold tails and tombstones into a fresh sorted run and publish a
    /// snapshot. One walk over the surviving rows builds the bins, the
    /// canonical first-encounter AP table, the index and the columns.
    pub fn compact(&mut self) -> LiveSnapshot {
        let n_rows = self.len();
        let mut new_merged: Vec<LiveRow> = Vec::with_capacity(n_rows);
        let old_merged = std::mem::take(&mut self.merged);
        let mut old_iter = old_merged.into_iter();
        let mut consumed = 0usize;
        for d in 0..self.devices.len() {
            let start = new_merged.len();
            let range = self.merged_ranges[d].clone();
            debug_assert_eq!(range.start, consumed, "merged ranges must tile the run");
            let tomb = self.tombs[d];
            let dead = |r: &LiveRow| match tomb {
                Some(day) => {
                    let rd = r.time.day();
                    rd == day || rd == day + 1
                }
                None => false,
            };
            for row in old_iter.by_ref().take(range.len()) {
                if !dead(&row) {
                    new_merged.push(row);
                }
            }
            consumed = range.end;
            // Tails were already tombstone-filtered on registration, and
            // every later append is filtered by the engine's cleaner.
            new_merged.append(&mut self.tails[d]);
            self.merged_ranges[d] = start..new_merged.len();
        }
        self.merged = new_merged;
        self.tail_rows = 0;
        self.dead_merged = 0;
        self.compactions += 1;

        // Single pass: bins + canonical AP interning + index + columns.
        let mut aps: Vec<ApEntry> = Vec::new();
        let mut ap_index: HashMap<(u64, String), ApRef> = HashMap::new();
        let mut bins: Vec<BinRecord> = Vec::with_capacity(self.merged.len());
        let mut index = DatasetIndexBuilder::new();
        let mut cols = DatasetColumns::new_for_push();
        for row in &self.merged {
            let wifi = match &row.wifi {
                WifiState::Off => WifiBinState::Off,
                WifiState::OnUnassociated => WifiBinState::OnUnassociated,
                WifiState::Associated(a) => {
                    let key = (a.bssid.as_u64(), a.essid.as_str().to_owned());
                    let ap = *ap_index.entry(key).or_insert_with(|| {
                        let r = ApRef(aps.len() as u32);
                        aps.push(ApEntry { bssid: a.bssid, essid: a.essid.clone() });
                        r
                    });
                    WifiBinState::Associated(WifiAssoc {
                        ap,
                        band: a.band,
                        channel: a.channel,
                        rssi: a.rssi,
                    })
                }
            };
            let bin = BinRecord {
                device: row.device,
                time: row.time,
                rx_3g: row.rx_3g,
                tx_3g: row.tx_3g,
                rx_lte: row.rx_lte,
                tx_lte: row.tx_lte,
                rx_wifi: row.rx_wifi,
                tx_wifi: row.tx_wifi,
                wifi,
                scan: row.scan,
                apps: row.apps.clone(),
                geo: row.geo,
                os_version: row.os_version,
            };
            index.push(bin.device, bin.time);
            cols.push_bin(&bin);
            bins.push(bin);
        }
        let ds = Dataset { meta: self.meta.clone(), devices: self.devices.clone(), aps, bins };
        LiveSnapshot {
            index: index.finish(ds.devices.len()),
            cols,
            ds,
            compactions: self.compactions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Carrier;
    use crate::ids::{Bssid, Essid};
    use crate::net::{AssocInfo, Band, Channel};
    use crate::record::Os;
    use crate::time::Year;
    use crate::units::Dbm;

    fn meta(days: u32) -> CampaignMeta {
        CampaignMeta { year: Year::Y2015, start: Year::Y2015.campaign_start(), days, seed: 0 }
    }

    fn devices(n: u32) -> Vec<DeviceInfo> {
        (0..n)
            .map(|i| DeviceInfo {
                device: DeviceId(i),
                os: Os::Android,
                carrier: Carrier::A,
                recruited: true,
                survey: None,
                truth: None,
            })
            .collect()
    }

    fn row(dev: u32, day: u32, bin: u32, wifi: WifiState) -> LiveRow {
        LiveRow {
            device: DeviceId(dev),
            time: SimTime::from_day_bin(day, bin),
            rx_3g: 1,
            tx_3g: 2,
            rx_lte: 3,
            tx_lte: 4,
            rx_wifi: u64::from(dev * 100 + day * 10 + bin),
            tx_wifi: 6,
            wifi,
            scan: ScanSummary::default(),
            apps: vec![],
            geo: CellId::new(1, 1),
            os_version: OsVersion::new(8, 1),
        }
    }

    fn assoc(name: &str, mac: u64) -> WifiState {
        WifiState::Associated(AssocInfo {
            bssid: Bssid::from_u64(mac),
            essid: Essid::new(name),
            band: Band::Ghz24,
            channel: Channel(6),
            rssi: Dbm::new(-60),
        })
    }

    /// The reference: what the snapshot must equal, computed the batch way
    /// (direct Dataset + batch index/column builds over the same rows).
    fn batch_reference(
        meta: CampaignMeta,
        devs: Vec<DeviceInfo>,
        rows: &[LiveRow],
    ) -> LiveSnapshot {
        let mut rows: Vec<LiveRow> = rows.to_vec();
        rows.sort_by_key(|r| (r.device, r.time));
        let mut aps: Vec<ApEntry> = Vec::new();
        let mut ap_index: HashMap<(u64, String), ApRef> = HashMap::new();
        let bins: Vec<BinRecord> = rows
            .iter()
            .map(|r| BinRecord {
                device: r.device,
                time: r.time,
                rx_3g: r.rx_3g,
                tx_3g: r.tx_3g,
                rx_lte: r.rx_lte,
                tx_lte: r.tx_lte,
                rx_wifi: r.rx_wifi,
                tx_wifi: r.tx_wifi,
                wifi: match &r.wifi {
                    WifiState::Off => WifiBinState::Off,
                    WifiState::OnUnassociated => WifiBinState::OnUnassociated,
                    WifiState::Associated(a) => {
                        let key = (a.bssid.as_u64(), a.essid.as_str().to_owned());
                        let ap = *ap_index.entry(key).or_insert_with(|| {
                            let ap = ApRef(aps.len() as u32);
                            aps.push(ApEntry { bssid: a.bssid, essid: a.essid.clone() });
                            ap
                        });
                        WifiBinState::Associated(WifiAssoc {
                            ap,
                            band: a.band,
                            channel: a.channel,
                            rssi: a.rssi,
                        })
                    }
                },
                scan: r.scan,
                apps: r.apps.clone(),
                geo: r.geo,
                os_version: r.os_version,
            })
            .collect();
        let ds = Dataset { meta, devices: devs, aps, bins };
        LiveSnapshot {
            index: DatasetIndex::build(&ds),
            cols: DatasetColumns::build(&ds),
            ds,
            compactions: 0,
        }
    }

    #[test]
    fn compaction_matches_batch_build() {
        let mut b = LiveTableBuilder::new(meta(5), devices(3)).with_compact_min_tail(4);
        let rows = vec![
            row(0, 0, 0, assoc("home", 1)),
            row(2, 0, 0, assoc("work", 2)),
            row(0, 0, 1, assoc("home", 1)),
            row(2, 0, 5, WifiState::Off),
            row(0, 1, 0, assoc("cafe", 3)),
            row(2, 1, 0, assoc("home", 1)),
            row(0, 1, 1, WifiState::OnUnassociated),
        ];
        for (k, r) in rows.iter().enumerate() {
            b.append(r.clone());
            if b.should_compact() {
                b.compact();
            }
            assert_eq!(b.len(), k + 1);
        }
        let snap = b.compact();
        let want = batch_reference(meta(5), devices(3), &rows);
        assert_eq!(snap.ds, want.ds);
        assert_eq!(snap.index, want.index);
        assert_eq!(snap.cols, want.cols);
        snap.ds.validate().unwrap();
        // Device 1 never appeared; its range must still be addressable.
        assert!(snap.index.device_range(DeviceId(1)).is_empty());
    }

    /// Canonical AP numbering is first-encounter over (device, time) order
    /// — *not* arrival order — so interleaved appends across devices must
    /// not disturb it, and multiple compactions must agree.
    #[test]
    fn ap_order_is_device_time_not_arrival() {
        let mut b = LiveTableBuilder::new(meta(3), devices(2)).with_compact_min_tail(1);
        // Device 1's "late" AP arrives first.
        b.append(row(1, 0, 0, assoc("late", 9)));
        let first = b.compact();
        assert_eq!(first.ds.aps.len(), 1);
        b.append(row(0, 0, 0, assoc("early", 5)));
        let snap = b.compact();
        assert_eq!(snap.ds.aps[0].essid.as_str(), "early");
        assert_eq!(snap.ds.aps[1].essid.as_str(), "late");
        let want = batch_reference(
            meta(3),
            devices(2),
            &[row(1, 0, 0, assoc("late", 9)), row(0, 0, 0, assoc("early", 5))],
        );
        assert_eq!(snap.ds, want.ds);
    }

    #[test]
    fn tombstone_removes_update_days_logically_and_physically() {
        let mut b = LiveTableBuilder::new(meta(5), devices(2)).with_compact_min_tail(1);
        for day in 0..4u32 {
            b.append(row(0, day, 0, WifiState::Off));
            b.append(row(1, day, 0, WifiState::Off));
        }
        b.compact();
        b.append(row(0, 4, 0, WifiState::Off));
        assert_eq!(b.len(), 9);
        // Device 0 updated on day 1: days 1 and 2 die — two in the merged
        // run, none in the tail.
        let killed = b.tombstone_update_day(DeviceId(0), 1);
        assert_eq!(killed, 2);
        assert_eq!(b.len(), 7, "logical removal is immediate");
        let snap = b.compact();
        assert_eq!(snap.ds.bins.len(), 7);
        let want_rows: Vec<LiveRow> = (0..4u32)
            .flat_map(|day| [row(0, day, 0, WifiState::Off), row(1, day, 0, WifiState::Off)])
            .chain([row(0, 4, 0, WifiState::Off)])
            .filter(|r| !(r.device == DeviceId(0) && (r.time.day() == 1 || r.time.day() == 2)))
            .collect();
        let want = batch_reference(meta(5), devices(2), &want_rows);
        assert_eq!(snap.ds, want.ds);
        assert_eq!(snap.index, want.index);
        assert_eq!(snap.cols, want.cols);
    }

    #[test]
    fn tombstone_filters_tail_rows_too() {
        let mut b = LiveTableBuilder::new(meta(4), devices(1)).with_compact_min_tail(100);
        for day in 0..4u32 {
            b.append(row(0, day, 0, WifiState::Off));
        }
        // All four rows still in the tail; update day 2 kills days 2 and 3.
        let killed = b.tombstone_update_day(DeviceId(0), 2);
        assert_eq!(killed, 2);
        assert_eq!(b.len(), 2);
        let snap = b.compact();
        let days: Vec<u32> = snap.ds.bins.iter().map(|x| x.time.day()).collect();
        assert_eq!(days, vec![0, 1]);
    }

    #[test]
    fn compaction_trigger_amortises() {
        let mut b = LiveTableBuilder::new(meta(30), devices(1)).with_compact_min_tail(8);
        let mut compactions = 0u64;
        for k in 0..1_000u32 {
            b.append(row(0, k / 144, k % 144, WifiState::Off));
            if b.should_compact() {
                b.compact();
                compactions += 1;
            }
        }
        assert!(compactions >= 2, "trigger never fired");
        assert!(compactions <= 16, "trigger fired {compactions} times for 1000 rows");
        assert_eq!(b.compactions(), compactions);
    }

    #[test]
    fn empty_builder_compacts_to_empty_snapshot() {
        let mut b = LiveTableBuilder::new(meta(1), devices(2));
        let snap = b.compact();
        assert!(snap.is_empty());
        assert_eq!(snap.len(), 0);
        assert_eq!(snap.ds.devices.len(), 2);
        assert_eq!(snap.cols.app_offsets, vec![0]);
        snap.ds.validate().unwrap();
    }
}
