//! Application categories.
//!
//! The Android agent reports per-application traffic which the study groups
//! into 26 Google-Play-style categories (§3.6). The tables in the paper use
//! short labels (`brows.`, `comm.`, `dload`, `prod.`, `life`, `busi`, …)
//! which we reproduce via [`AppCategory::short_label`].

use serde::{Deserialize, Serialize};

/// One of the 26 application categories used by the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AppCategory {
    /// Web browsers (includes web-delivered video/social use).
    Browser,
    /// Social networking (Facebook, Twitter, …).
    Social,
    /// Video and media streaming (YouTube, Nicovideo, …).
    Video,
    /// Messaging and email (Line, mail clients, …).
    Communication,
    /// News and magazines.
    News,
    /// Games.
    Game,
    /// Music and audio.
    Music,
    /// Travel and local transit.
    Travel,
    /// Shopping.
    Shopping,
    /// App/file downloading (app store payloads, large file fetches).
    Downloading,
    /// Entertainment (lotteries, surveys, …).
    Entertainment,
    /// Tools (printers, speed tests, …).
    Tools,
    /// Productivity (online file storage/sync, office suites).
    Productivity,
    /// Lifestyle (restaurant info, cooking, …).
    Lifestyle,
    /// Health and fitness.
    Health,
    /// Business.
    Business,
    /// Books and reference.
    Books,
    /// Education.
    Education,
    /// Finance.
    Finance,
    /// Maps and navigation.
    Maps,
    /// Photography.
    Photography,
    /// Weather.
    Weather,
    /// Personalization (themes, wallpapers).
    Personalization,
    /// Sports.
    Sports,
    /// Medical.
    Medical,
    /// Libraries/demo and uncategorised.
    Other,
}

impl AppCategory {
    /// All categories, in stable order. `ALL.len() == 26` as in the study.
    pub const ALL: [AppCategory; 26] = [
        AppCategory::Browser,
        AppCategory::Social,
        AppCategory::Video,
        AppCategory::Communication,
        AppCategory::News,
        AppCategory::Game,
        AppCategory::Music,
        AppCategory::Travel,
        AppCategory::Shopping,
        AppCategory::Downloading,
        AppCategory::Entertainment,
        AppCategory::Tools,
        AppCategory::Productivity,
        AppCategory::Lifestyle,
        AppCategory::Health,
        AppCategory::Business,
        AppCategory::Books,
        AppCategory::Education,
        AppCategory::Finance,
        AppCategory::Maps,
        AppCategory::Photography,
        AppCategory::Weather,
        AppCategory::Personalization,
        AppCategory::Sports,
        AppCategory::Medical,
        AppCategory::Other,
    ];

    /// Compact index for array-backed tallies.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`index`](Self::index); `None` when out of range.
    pub fn from_index(i: usize) -> Option<AppCategory> {
        AppCategory::ALL.get(i).copied()
    }

    /// The abbreviated label used in the paper's Tables 6 and 7.
    pub fn short_label(self) -> &'static str {
        match self {
            AppCategory::Browser => "brows.",
            AppCategory::Social => "social",
            AppCategory::Video => "video",
            AppCategory::Communication => "comm.",
            AppCategory::News => "news",
            AppCategory::Game => "game",
            AppCategory::Music => "music",
            AppCategory::Travel => "travel",
            AppCategory::Shopping => "shop.",
            AppCategory::Downloading => "dload",
            AppCategory::Entertainment => "enter.",
            AppCategory::Tools => "tools",
            AppCategory::Productivity => "prod.",
            AppCategory::Lifestyle => "life",
            AppCategory::Health => "health",
            AppCategory::Business => "busi",
            AppCategory::Books => "books",
            AppCategory::Education => "edu",
            AppCategory::Finance => "fin",
            AppCategory::Maps => "maps",
            AppCategory::Photography => "photo",
            AppCategory::Weather => "wthr",
            AppCategory::Personalization => "perso",
            AppCategory::Sports => "sports",
            AppCategory::Medical => "med",
            AppCategory::Other => "other",
        }
    }

    /// Full human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AppCategory::Browser => "browser",
            AppCategory::Social => "social networking",
            AppCategory::Video => "video and media",
            AppCategory::Communication => "communication",
            AppCategory::News => "news",
            AppCategory::Game => "gaming",
            AppCategory::Music => "music",
            AppCategory::Travel => "travel",
            AppCategory::Shopping => "shopping",
            AppCategory::Downloading => "downloading",
            AppCategory::Entertainment => "entertainment",
            AppCategory::Tools => "tools",
            AppCategory::Productivity => "productivity",
            AppCategory::Lifestyle => "lifestyle",
            AppCategory::Health => "health and fitness",
            AppCategory::Business => "business",
            AppCategory::Books => "books and reference",
            AppCategory::Education => "education",
            AppCategory::Finance => "finance",
            AppCategory::Maps => "maps and navigation",
            AppCategory::Photography => "photography",
            AppCategory::Weather => "weather",
            AppCategory::Personalization => "personalization",
            AppCategory::Sports => "sports",
            AppCategory::Medical => "medical",
            AppCategory::Other => "other",
        }
    }

    /// Categories the paper singles out as bandwidth-consuming (§4.4):
    /// video streaming, large downloads, and online-storage sync.
    pub fn is_bandwidth_consuming(self) -> bool {
        matches!(self, AppCategory::Video | AppCategory::Downloading | AppCategory::Productivity)
    }
}

impl std::fmt::Display for AppCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn twenty_six_categories() {
        assert_eq!(AppCategory::ALL.len(), 26);
        let set: HashSet<_> = AppCategory::ALL.iter().collect();
        assert_eq!(set.len(), 26, "categories must be distinct");
    }

    #[test]
    fn index_roundtrip() {
        for (i, c) in AppCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(AppCategory::from_index(i), Some(*c));
        }
        assert_eq!(AppCategory::from_index(26), None);
    }

    #[test]
    fn labels_unique() {
        let labels: HashSet<_> = AppCategory::ALL.iter().map(|c| c.short_label()).collect();
        assert_eq!(labels.len(), 26);
    }

    #[test]
    fn paper_table_labels() {
        assert_eq!(AppCategory::Browser.short_label(), "brows.");
        assert_eq!(AppCategory::Downloading.short_label(), "dload");
        assert_eq!(AppCategory::Productivity.short_label(), "prod.");
        assert_eq!(AppCategory::Lifestyle.short_label(), "life");
        assert_eq!(AppCategory::Business.short_label(), "busi");
    }

    #[test]
    fn bandwidth_consuming_set() {
        let heavy: Vec<_> =
            AppCategory::ALL.iter().filter(|c| c.is_bandwidth_consuming()).collect();
        assert_eq!(heavy.len(), 3);
    }
}
