//! Precomputed bin-range index over a [`Dataset`].
//!
//! Analyses repeatedly need "all bins of device X" or "device X's bins on
//! day Y". The dataset is sorted by (device, time), so those are contiguous
//! slices — but finding them with `partition_point` per query re-scans the
//! bin table over and over. [`DatasetIndex`] computes every per-device
//! range and per-(device, day) sub-range in a single pass, turning each
//! later lookup into O(1) (device) or O(log days) (day) slicing.
//!
//! The index holds plain offsets, not references, so it can be built once
//! and shared freely across analysis threads.

use crate::dataset::{BinRecord, Dataset};
use crate::error::ModelError;
use crate::ids::DeviceId;
use std::ops::Range;

/// One contiguous run of bins: a single device on a single campaign day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DaySpan {
    /// Campaign day index.
    day: u32,
    /// First bin of the run (index into `Dataset::bins`).
    start: u32,
    /// One past the last bin of the run.
    end: u32,
}

/// Per-device and per-(device, day) bin ranges of one [`Dataset`].
///
/// Built once via [`DatasetIndex::build`]; valid for as long as the
/// dataset's `bins` vector is unmodified.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatasetIndex {
    /// `device_start[d]..device_start[d + 1]` is device `d`'s bin range.
    device_start: Vec<u32>,
    /// `day_offsets[d]..day_offsets[d + 1]` indexes `day_spans` for
    /// device `d`; spans are in ascending day order.
    day_offsets: Vec<u32>,
    /// All (device, day) runs, grouped by device.
    day_spans: Vec<DaySpan>,
}

impl DatasetIndex {
    /// Build the index in one pass over `ds.bins` (which
    /// [`Dataset::validate`] guarantees is sorted by (device, time) with
    /// every bin's device present in the device table).
    pub fn build(ds: &Dataset) -> DatasetIndex {
        let n = ds.devices.len();
        let bins = &ds.bins;
        let mut device_start = vec![0u32; n + 1];
        let mut day_offsets = vec![0u32; n + 1];
        let mut day_spans: Vec<DaySpan> = Vec::new();
        let mut i = 0usize;
        for d in 0..n {
            device_start[d] = i as u32;
            day_offsets[d] = day_spans.len() as u32;
            let dev = DeviceId(d as u32);
            while i < bins.len() && bins[i].device == dev {
                let day = bins[i].time.day();
                let start = i;
                while i < bins.len() && bins[i].device == dev && bins[i].time.day() == day {
                    i += 1;
                }
                day_spans.push(DaySpan { day, start: start as u32, end: i as u32 });
            }
        }
        device_start[n] = i as u32;
        day_offsets[n] = day_spans.len() as u32;
        debug_assert_eq!(i, bins.len(), "bins referencing devices outside the table");
        DatasetIndex { device_start, day_offsets, day_spans }
    }

    /// Number of devices the index covers.
    pub fn n_devices(&self) -> usize {
        self.device_start.len().saturating_sub(1)
    }

    /// Total number of indexed bins.
    pub fn n_bins(&self) -> usize {
        self.device_start.last().copied().unwrap_or(0) as usize
    }

    /// The bin range of one device (empty for devices without bins or
    /// outside the table).
    pub fn device_range(&self, d: DeviceId) -> Range<usize> {
        let i = d.index();
        if i + 1 >= self.device_start.len() {
            return 0..0;
        }
        self.device_start[i] as usize..self.device_start[i + 1] as usize
    }

    /// The bins of one device as a slice of the dataset.
    pub fn device_bins<'d>(&self, ds: &'d Dataset, d: DeviceId) -> &'d [BinRecord] {
        &ds.bins[self.device_range(d)]
    }

    /// Devices that have at least one bin, in id order.
    pub fn devices_with_bins(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.n_devices()).filter_map(move |i| {
            (self.device_start[i] < self.device_start[i + 1]).then_some(DeviceId(i as u32))
        })
    }

    /// The (day, bin-range) runs of one device, ascending by day.
    pub fn day_spans(&self, d: DeviceId) -> impl Iterator<Item = (u32, Range<usize>)> + '_ {
        let i = d.index();
        let r = if i + 1 >= self.day_offsets.len() {
            0..0
        } else {
            self.day_offsets[i] as usize..self.day_offsets[i + 1] as usize
        };
        self.day_spans[r].iter().map(|s| (s.day, s.start as usize..s.end as usize))
    }

    /// The bin range of one device on one day, if that device produced
    /// bins that day.
    pub fn day_range(&self, d: DeviceId, day: u32) -> Option<Range<usize>> {
        let i = d.index();
        if i + 1 >= self.day_offsets.len() {
            return None;
        }
        let spans = &self.day_spans[self.day_offsets[i] as usize..self.day_offsets[i + 1] as usize];
        let k = spans.binary_search_by_key(&day, |s| s.day).ok()?;
        Some(spans[k].start as usize..spans[k].end as usize)
    }

    /// Flatten the index into plain `u32` columns for persistence. The
    /// inverse of [`from_columns`](Self::from_columns); together they
    /// round-trip the index losslessly without re-scanning the dataset.
    pub fn to_columns(&self) -> IndexColumns {
        IndexColumns {
            device_start: self.device_start.clone(),
            day_offsets: self.day_offsets.clone(),
            span_day: self.day_spans.iter().map(|s| s.day).collect(),
            span_start: self.day_spans.iter().map(|s| s.start).collect(),
            span_end: self.day_spans.iter().map(|s| s.end).collect(),
        }
    }

    /// Reassemble an index from persisted columns, re-checking the shape
    /// invariants [`build`](Self::build) guarantees (equal table lengths,
    /// monotone offsets, spans nested in their device range) so corrupt
    /// input surfaces as [`ModelError::Inconsistent`] instead of panics
    /// or silent wrong slicing later.
    pub fn from_columns(c: IndexColumns) -> Result<DatasetIndex, ModelError> {
        let bad = |what: &str| ModelError::Inconsistent(format!("index columns: {what}"));
        if c.device_start.len() != c.day_offsets.len() || c.device_start.is_empty() {
            return Err(bad("device_start / day_offsets length mismatch"));
        }
        let ns = c.span_day.len();
        if c.span_start.len() != ns || c.span_end.len() != ns {
            return Err(bad("span column length mismatch"));
        }
        if c.day_offsets.last().copied().unwrap_or(0) as usize != ns {
            return Err(bad("day_offsets does not close over the span table"));
        }
        if c.device_start.windows(2).any(|w| w[0] > w[1])
            || c.day_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(bad("offsets not monotone"));
        }
        let day_spans: Vec<DaySpan> = (0..ns)
            .map(|i| DaySpan { day: c.span_day[i], start: c.span_start[i], end: c.span_end[i] })
            .collect();
        for d in 0..c.device_start.len() - 1 {
            let (lo, hi) = (c.device_start[d], c.device_start[d + 1]);
            let spans = day_spans
                .get(c.day_offsets[d] as usize..c.day_offsets[d + 1] as usize)
                .ok_or_else(|| bad("day_offsets outside the span table"))?;
            let mut cursor = lo;
            for s in spans {
                if s.start != cursor || s.end < s.start || s.end > hi {
                    return Err(bad("span not contiguous within its device range"));
                }
                cursor = s.end;
            }
            if cursor != hi {
                return Err(bad("spans do not cover the device range"));
            }
            if spans.windows(2).any(|w| w[0].day >= w[1].day) {
                return Err(bad("span days not strictly ascending"));
            }
        }
        Ok(DatasetIndex { device_start: c.device_start, day_offsets: c.day_offsets, day_spans })
    }
}

/// [`DatasetIndex`] flattened into plain columns — the persistence
/// exchange format used by the `.mtpool` pool codec.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexColumns {
    /// `device_start[d]..device_start[d + 1]` is device `d`'s bin range.
    pub device_start: Vec<u32>,
    /// `day_offsets[d]..day_offsets[d + 1]` indexes the span columns.
    pub day_offsets: Vec<u32>,
    /// Campaign day of each span.
    pub span_day: Vec<u32>,
    /// First bin of each span.
    pub span_start: Vec<u32>,
    /// One past the last bin of each span.
    pub span_end: Vec<u32>,
}

/// Streaming construction of a [`DatasetIndex`]: rows are pushed one at a
/// time in (device, time) order and the per-device ranges and day spans are
/// extended in place, so the live pipeline's compaction walk builds the
/// index in the same single pass that builds the bins and columns —
/// without a second scan over the dataset.
///
/// Produces bit-identical output to [`DatasetIndex::build`] over the same
/// rows (the builder's tests and the live-vs-batch equivalence suite hold
/// it to that).
#[derive(Debug, Default)]
pub struct DatasetIndexBuilder {
    device_start: Vec<u32>,
    day_offsets: Vec<u32>,
    day_spans: Vec<DaySpan>,
    /// Rows pushed so far.
    rows: u32,
    /// The (device, day) run currently being extended.
    open: Option<(DeviceId, u32, u32)>,
    /// Devices whose start offsets are already recorded.
    next_device: usize,
}

impl DatasetIndexBuilder {
    /// Empty builder.
    pub fn new() -> DatasetIndexBuilder {
        DatasetIndexBuilder::default()
    }

    /// Append one row. Rows must arrive sorted by (device, time) — the
    /// dataset invariant [`Dataset::validate`] enforces.
    pub fn push(&mut self, device: DeviceId, time: crate::time::SimTime) {
        let day = time.day();
        match self.open {
            Some((d, od, _)) if d == device && od == day => {}
            Some((d, od, start)) if d == device => {
                debug_assert!(od < day, "rows out of time order within a device");
                self.day_spans.push(DaySpan { day: od, start, end: self.rows });
                self.open = Some((device, day, self.rows));
            }
            _ => {
                if let Some((d, od, start)) = self.open.take() {
                    debug_assert!(d < device, "rows out of device order");
                    self.day_spans.push(DaySpan { day: od, start, end: self.rows });
                }
                while self.next_device <= device.index() {
                    self.device_start.push(self.rows);
                    self.day_offsets.push(self.day_spans.len() as u32);
                    self.next_device += 1;
                }
                self.open = Some((device, day, self.rows));
            }
        }
        self.rows += 1;
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows as usize
    }

    /// True when nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Close the index over a device table of `n_devices` entries (every
    /// pushed device id must be below it).
    pub fn finish(mut self, n_devices: usize) -> DatasetIndex {
        if let Some((_, od, start)) = self.open.take() {
            self.day_spans.push(DaySpan { day: od, start, end: self.rows });
        }
        debug_assert!(self.next_device <= n_devices, "pushed device outside the table");
        while self.next_device <= n_devices {
            self.device_start.push(self.rows);
            self.day_offsets.push(self.day_spans.len() as u32);
            self.next_device += 1;
        }
        DatasetIndex {
            device_start: self.device_start,
            day_offsets: self.day_offsets,
            day_spans: self.day_spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::*;
    use crate::ids::CellId;
    use crate::record::{Os, OsVersion};
    use crate::time::{SimTime, Year};

    fn bin(dev: u32, day: u32, b: u32) -> BinRecord {
        BinRecord {
            device: DeviceId(dev),
            time: SimTime::from_day_bin(day, b),
            rx_3g: 0,
            tx_3g: 0,
            rx_lte: 1,
            tx_lte: 0,
            rx_wifi: 0,
            tx_wifi: 0,
            wifi: WifiBinState::Off,
            scan: ScanSummary::default(),
            apps: vec![],
            geo: CellId::new(0, 0),
            os_version: OsVersion::new(4, 4),
        }
    }

    fn dataset(n_devices: u32, bins: Vec<BinRecord>) -> Dataset {
        let mut bins = bins;
        bins.sort_by_key(|b| (b.device, b.time));
        Dataset {
            meta: CampaignMeta {
                year: Year::Y2014,
                start: Year::Y2014.campaign_start(),
                days: 15,
                seed: 0,
            },
            devices: (0..n_devices)
                .map(|i| DeviceInfo {
                    device: DeviceId(i),
                    os: Os::Android,
                    carrier: Carrier::A,
                    recruited: true,
                    survey: None,
                    truth: None,
                })
                .collect(),
            aps: vec![],
            bins,
        }
    }

    #[test]
    fn ranges_match_device_bins_scan() {
        // Device 1 has no bins at all; device 0 spans two days.
        let ds =
            dataset(3, vec![bin(0, 0, 3), bin(0, 0, 9), bin(0, 2, 1), bin(2, 1, 0), bin(2, 1, 5)]);
        ds.validate().unwrap();
        let index = DatasetIndex::build(&ds);
        assert_eq!(index.n_devices(), 3);
        assert_eq!(index.n_bins(), ds.bins.len());
        for d in 0..3u32 {
            let dev = DeviceId(d);
            let via_index: Vec<_> = index.device_bins(&ds, dev).iter().collect();
            let via_scan: Vec<_> = ds.device_bins(dev).collect();
            assert_eq!(via_index, via_scan, "device {d}");
        }
        assert!(index.device_range(DeviceId(1)).is_empty());
        let with_bins: Vec<_> = index.devices_with_bins().collect();
        assert_eq!(with_bins, vec![DeviceId(0), DeviceId(2)]);
    }

    #[test]
    fn day_spans_partition_each_device() {
        let ds =
            dataset(2, vec![bin(0, 0, 3), bin(0, 0, 9), bin(0, 2, 1), bin(1, 1, 0), bin(1, 1, 5)]);
        let index = DatasetIndex::build(&ds);
        let spans: Vec<_> = index.day_spans(DeviceId(0)).collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], (0, 0..2));
        assert_eq!(spans[1], (2, 2..3));
        // Spans must exactly tile the device range.
        let total: usize = spans.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(total, index.device_range(DeviceId(0)).len());
    }

    #[test]
    fn day_range_lookup() {
        let ds = dataset(2, vec![bin(0, 0, 3), bin(0, 2, 1), bin(1, 1, 0)]);
        let index = DatasetIndex::build(&ds);
        assert_eq!(index.day_range(DeviceId(0), 0), Some(0..1));
        assert_eq!(index.day_range(DeviceId(0), 1), None);
        assert_eq!(index.day_range(DeviceId(0), 2), Some(1..2));
        assert_eq!(index.day_range(DeviceId(1), 1), Some(2..3));
        assert_eq!(index.day_range(DeviceId(9), 0), None);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let ds = dataset(0, vec![]);
        let index = DatasetIndex::build(&ds);
        assert_eq!(index.n_devices(), 0);
        assert_eq!(index.n_bins(), 0);
        assert!(index.device_range(DeviceId(0)).is_empty());
        assert_eq!(index.day_range(DeviceId(0), 0), None);
    }

    /// The streaming builder must reproduce `build` exactly, including
    /// around empty devices at the start, middle and end of the table.
    #[test]
    fn builder_matches_batch_build() {
        let cases: Vec<(u32, Vec<BinRecord>)> = vec![
            (0, vec![]),
            (3, vec![]),
            (3, vec![bin(0, 0, 3), bin(0, 0, 9), bin(0, 2, 1), bin(2, 1, 0), bin(2, 1, 5)]),
            (5, vec![bin(1, 0, 0), bin(1, 1, 0), bin(1, 1, 1), bin(3, 0, 7)]),
            (2, vec![bin(0, 0, 0), bin(0, 1, 0), bin(1, 0, 0), bin(1, 2, 0)]),
        ];
        for (n, bins) in cases {
            let ds = dataset(n, bins);
            let batch = DatasetIndex::build(&ds);
            let mut builder = DatasetIndexBuilder::new();
            for b in &ds.bins {
                builder.push(b.device, b.time);
            }
            assert_eq!(builder.len(), ds.bins.len());
            let streamed = builder.finish(n as usize);
            assert_eq!(streamed, batch, "{n} devices, {} bins", ds.bins.len());
        }
    }
}
