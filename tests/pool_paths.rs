//! The pool's correctness contract, end to end: the three ways to reach
//! analysis-ready contexts — resimulate in memory, reload the JSON
//! datasets, or mmap the `.mtpool` file — must render **bit-identical**
//! experiment reports for every experiment in the registry. Rendered text
//! is the strictest practical equality: it folds every table cell, every
//! figure bar, and every paper-reference comparison into one string, so
//! any drift anywhere in the decode path shows up as a diff here.

use mobitrace_report::{all_experiment_ids, run_experiment, CampaignSet};
use std::path::PathBuf;

const SCALE: f64 = 0.012;
const SEED: u64 = 77;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mt-pool-paths-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn render_all(set: &CampaignSet) -> Vec<(String, String)> {
    let ctxs = set.contexts();
    all_experiment_ids()
        .iter()
        .map(|id| {
            let r = run_experiment(id, set, &ctxs).expect("registered experiment");
            (id.to_string(), r.render())
        })
        .collect()
}

#[test]
fn resimulate_json_and_pool_render_identical_reports() {
    let dir = scratch_dir("tri");
    let pool_path = dir.join("campaigns.mtpool");

    // Path 1: resimulate.
    let sim_set = CampaignSet::simulate(SCALE, SEED);
    let sim_reports = render_all(&sim_set);
    assert!(!sim_reports.is_empty());

    // Path 2: JSON round-trip.
    sim_set.save(&dir).expect("save json");
    let json_set = CampaignSet::load(&dir).expect("load json");
    let json_reports = render_all(&json_set);

    // Path 3: pool round-trip, contexts served from the stored
    // index/columns rather than rebuilt.
    sim_set.save_pool(&pool_path).expect("save pool");
    let (pool_set, views) = CampaignSet::load_pool(&pool_path).expect("load pool");
    let pool_ctxs = pool_set.contexts_with(views);
    let pool_reports: Vec<(String, String)> = all_experiment_ids()
        .iter()
        .map(|id| {
            let r = run_experiment(id, &pool_set, &pool_ctxs).expect("registered experiment");
            (id.to_string(), r.render())
        })
        .collect();

    assert_eq!(sim_reports.len(), json_reports.len());
    assert_eq!(sim_reports.len(), pool_reports.len());
    for ((id, sim), ((jid, json), (pid, pool))) in
        sim_reports.iter().zip(json_reports.iter().zip(pool_reports.iter()))
    {
        assert_eq!(id, jid);
        assert_eq!(id, pid);
        assert_eq!(sim, json, "JSON path diverged on experiment {id}");
        assert_eq!(sim, pool, "pool path diverged on experiment {id}");
    }

    std::fs::remove_dir_all(&dir).ok();
}
