//! End-to-end integration: simulate all three campaigns through the full
//! agent → transport → server → cleaning pipeline and check that the
//! paper's qualitative findings hold — directions and rough magnitudes,
//! robust to seed and scale.

use mobitrace_core::ratios::{wifi_traffic_ratio, ClassFilter};
use mobitrace_core::AnalysisContext;
use mobitrace_model::Year;
use mobitrace_report::{all_experiment_ids, run_experiment, CampaignSet};

fn small_set() -> CampaignSet {
    CampaignSet::simulate(0.1, 424242)
}

#[test]
fn paper_trends_hold_end_to_end() {
    let set = small_set();
    let ctxs = set.contexts();

    // (1) WiFi share of aggregate volume grows and exceeds half by 2015.
    let shares: Vec<f64> = Year::ALL
        .iter()
        .zip(&ctxs)
        .map(|(y, c)| {
            mobitrace_core::timeseries::aggregate_series(set.year(*y), &c.cols).wifi_share()
        })
        .collect();
    assert!(shares[0] < shares[2], "WiFi share must grow: {shares:?}");
    assert!(shares[2] > 0.55 && shares[2] < 0.8, "2015 share {:.2}", shares[2]);

    // (2) Median daily volumes grow every year (Table 3 trend).
    let medians: Vec<f64> =
        ctxs.iter().map(|c| mobitrace_core::volume::volume_table(&c.days).all.median_mb).collect();
    assert!(medians[0] < medians[1] && medians[1] < medians[2], "{medians:?}");
    // WiFi median overtakes cellular by 2015 (finding #2 of the paper).
    let t15 = mobitrace_core::volume::volume_table(&ctxs[2].days);
    assert!(t15.wifi.median_mb > t15.cell.median_mb);
    let t13 = mobitrace_core::volume::volume_table(&ctxs[0].days);
    assert!(t13.wifi.median_mb < t13.cell.median_mb, "2013: cellular still led");

    // (3) Cellular-intensive users decline (35% → 22% in the paper).
    let cell_int: Vec<f64> = ctxs
        .iter()
        .map(|c| mobitrace_core::usertype::user_type_shares(&c.days).cellular_intensive)
        .collect();
    assert!(cell_int[0] > cell_int[2] + 0.05, "{cell_int:?}");

    // (4) Heavy hitters offload more than light users, in every year.
    for ctx in &ctxs {
        let heavy =
            wifi_traffic_ratio(ctx, ClassFilter::Only(mobitrace_core::daily::TrafficClass::Heavy));
        let light =
            wifi_traffic_ratio(ctx, ClassFilter::Only(mobitrace_core::daily::TrafficClass::Light));
        assert!(heavy.mean > light.mean, "heavy {} vs light {}", heavy.mean, light.mean);
    }

    // (5) Home carries the vast majority of WiFi volume.
    let venues = mobitrace_core::timeseries::venue_series(
        set.year(Year::Y2015),
        &ctxs[2].cols,
        &ctxs[2].aps,
    );
    assert!(venues.shares.0 > 0.75, "home share {:.2}", venues.shares.0);

    // (6) Public AP deployment (unique associated pairs) roughly doubles.
    let public: Vec<f64> = ctxs.iter().map(|c| c.aps.counts.public as f64).collect();
    assert!(public[2] > public[0] * 1.6, "{public:?}");

    // (7) Inferred-home-AP share grows towards ~0.8.
    let inferred: Vec<f64> = Year::ALL
        .iter()
        .zip(&ctxs)
        .map(|(y, c)| c.aps.home_of.len() as f64 / set.year(*y).devices.len() as f64)
        .collect();
    assert!(inferred[0] < inferred[2], "{inferred:?}");
    assert!((0.5..0.9).contains(&inferred[2]), "{inferred:?}");

    // (8) The home heuristic is precise against ground truth.
    for (y, ctx) in Year::ALL.iter().zip(&ctxs) {
        let score = mobitrace_core::apclass::score_home_inference(set.year(*y), &ctx.aps);
        assert!(score.precision() > 0.9, "{y}: precision {}", score.precision());
    }
}

#[test]
fn update_event_shapes_hold() {
    let set = small_set();
    let ctxs = set.contexts();
    let a = mobitrace_core::update::update_analysis(&set.update_2015, &ctxs[2].aps, 10);
    assert!(a.ios_devices > 20);
    assert!((0.4..0.8).contains(&a.adoption), "adoption {}", a.adoption);
    // Users without home APs update far less. The strict ratio is a
    // proportion estimated over `n_no_home` devices, so only assert it when
    // the group is large enough to carry it; tiny samples (the no-home
    // group is ~10% of iOS devices at this scale) still must not invert
    // the direction.
    assert!(a.adoption_no_home < a.adoption_home, "{} vs {}", a.adoption_no_home, a.adoption_home);
    if a.n_no_home >= 20 {
        assert!(a.adoption_no_home < a.adoption_home * 0.6);
    }
    // ...and later — but the median is only meaningful with a handful of
    // no-home updaters in the sample (they are ~3% of iOS devices).
    let no_home_updaters = a.updates.iter().filter(|u| !u.has_home_ap).count();
    if no_home_updaters >= 5 {
        assert!(
            a.median_delay_no_home > a.median_delay_home - 0.5,
            "no-home delay {} vs home {}",
            a.median_delay_no_home,
            a.median_delay_home
        );
    }
}

#[test]
fn every_experiment_produces_a_report() {
    let set = CampaignSet::simulate(0.03, 7);
    let ctxs = set.contexts();
    for id in all_experiment_ids() {
        let r = run_experiment(id, &set, &ctxs).expect("registered");
        assert!(!r.render().is_empty(), "{id}");
    }
}

#[test]
fn analysis_context_is_internally_consistent() {
    let set = CampaignSet::simulate(0.03, 99);
    for y in Year::ALL {
        let ds = set.year(y);
        ds.validate().unwrap();
        let ctx = AnalysisContext::new(ds);
        // Every class in `classes` corresponds 1:1 to `days`.
        assert_eq!(ctx.days.len(), ctx.classes.len());
        // Thresholds are ordered.
        let (p40, p60, p95) = ctx.thresholds;
        assert!(p40 <= p60 && p60 <= p95);
        // Every inferred home pair exists in the AP table.
        for ap in ctx.aps.home_of.values() {
            assert!(ap.index() < ds.aps.len());
        }
    }
}
