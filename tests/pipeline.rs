//! Integration tests of the measurement pipeline under stress: hostile
//! transports, serialization round-trips, determinism across runs.

use mobitrace_collector::{CleanOptions, FaultPlan};
use mobitrace_model::{Dataset, OsVersion, Year};
use mobitrace_sim::campaign::run_campaign_opts;
use mobitrace_sim::{run_campaign, CampaignConfig};

fn tiny(year: Year, seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig::scaled(year, 0.02).with_seed(seed);
    cfg.days = 5;
    cfg
}

#[test]
fn hostile_transport_still_yields_consistent_dataset() {
    let mut cfg = tiny(Year::Y2014, 1);
    cfg.faults = FaultPlan::hostile();
    let (ds, summary) = run_campaign(&cfg);
    ds.validate().unwrap();
    // Corruption was detected (checksums) rather than admitted.
    assert!(summary.ingest.rejected > 0, "hostile channel must corrupt something");
    assert!(summary.ingest.duplicates > 0);
    // Even so every device contributed data.
    for d in &ds.devices {
        assert!(ds.device_bins(d.device).next().is_some(), "{} lost", d.device);
    }
    // Volume survives: totals within a few percent of a reliable run of
    // the same campaign (cumulative counters absorb mid-stream loss; only
    // tail loss can shave volume).
    let mut reliable = tiny(Year::Y2014, 1);
    reliable.faults = FaultPlan::reliable();
    let (ds_ok, _) = run_campaign(&reliable);
    let (a, b) = (ds.total_rx().as_bytes() as f64, ds_ok.total_rx().as_bytes() as f64);
    assert!((a - b).abs() / b < 0.05, "hostile {a} vs reliable {b}");
}

#[test]
fn campaigns_are_deterministic() {
    let (a, _) = run_campaign(&tiny(Year::Y2013, 9));
    let (b, _) = run_campaign(&tiny(Year::Y2013, 9));
    assert_eq!(a, b, "same seed must give bit-identical datasets");
    let (c, _) = run_campaign(&tiny(Year::Y2013, 10));
    assert_ne!(a.total_rx(), c.total_rx());
}

#[test]
fn dataset_serializes_and_roundtrips() {
    let (ds, _) = run_campaign(&tiny(Year::Y2015, 3));
    let json = serde_json::to_string(&ds).expect("serialize");
    let back: Dataset = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(ds, back);
    back.validate().unwrap();
}

#[test]
fn update_day_stripping_matches_inline_cleaning() {
    let mut cfg = CampaignConfig::scaled(Year::Y2015, 0.03).with_seed(5);
    cfg.days = 25;
    // Run once keeping update days, then strip post-hoc...
    let keep = CleanOptions { remove_update_days: false, ..CleanOptions::default() };
    let (with_updates, _) = run_campaign_opts(&cfg, keep);
    let (stripped, removed) = mobitrace_collector::strip_update_days(&with_updates);
    // ...and once cleaning inline: the two must agree.
    let (inline, _) = run_campaign_opts(&cfg, CleanOptions::default());
    assert_eq!(stripped.bins.len(), inline.bins.len());
    assert_eq!(stripped.total_rx(), inline.total_rx());
    if removed > 0 {
        assert!(with_updates.bins.len() > stripped.bins.len());
    }
    // No update-day bins survive in the stripped variant: every device
    // that transitioned to 8.2 has a 2-day hole.
    let mut prev = std::collections::HashMap::new();
    for b in &stripped.bins {
        if let Some(&p) = prev.get(&b.device) {
            assert!(
                !(p < OsVersion::IOS_8_2 && b.os_version >= OsVersion::IOS_8_2) || b.time.day() > 0,
                "transition bin should have been removed"
            );
        }
        prev.insert(b.device, b.os_version);
    }
    stripped.validate().unwrap();
}

#[test]
fn scale_invariance_of_key_ratios() {
    // Per-user statistics should not drift wildly with population size.
    let small = {
        let (ds, _) = run_campaign(&CampaignConfig::scaled(Year::Y2015, 0.03).with_seed(11));
        let ctx = mobitrace_core::AnalysisContext::new(&ds);
        mobitrace_core::ratios::wifi_traffic_ratio(&ctx, mobitrace_core::ratios::ClassFilter::All)
            .mean
    };
    let larger = {
        let (ds, _) = run_campaign(&CampaignConfig::scaled(Year::Y2015, 0.09).with_seed(11));
        let ctx = mobitrace_core::AnalysisContext::new(&ds);
        mobitrace_core::ratios::wifi_traffic_ratio(&ctx, mobitrace_core::ratios::ClassFilter::All)
            .mean
    };
    assert!(
        (small - larger).abs() < 0.12,
        "wifi-traffic ratio drifts with scale: {small} vs {larger}"
    );
}
