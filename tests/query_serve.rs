//! The query + serve layer's cross-crate contracts, pinned end to end:
//!
//! 1. `cohort=` predicates select exactly the devices the fleet frontend's
//!    [`CohortRouter`] routes to that cohort — the filter language and the
//!    ingest sharding must never disagree about what a cohort is.
//! 2. `mobitrace pool export --where` round-trips: loading a filtered pool
//!    and analyzing it is bit-identical to running the same filter as a
//!    query over the original in-memory campaign set.
//! 3. `mobitrace serve --live` semantics: the observer sees ≥1 snapshot
//!    generation while ingest runs, and the final generation's query
//!    payloads (unfiltered and filtered) equal the batch pipeline over the
//!    same records.

use mobitrace_core::AnalysisContext;
use mobitrace_fleet::CohortRouter;
use mobitrace_model::{DatasetColumns, DatasetIndex, DeviceId, Year};
use mobitrace_query::{
    cohort_of, evaluate_payload, materialize, parse, select_rows, watermark_minute, CompileOptions,
    Query, QuerySet,
};
use mobitrace_report::CampaignSet;
use std::path::PathBuf;

const SCALE: f64 = 0.012;
const SEED: u64 = 77;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mt-query-serve-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The filter compiler's `cohort_of` must agree with the fleet router for
/// every device id and cohort count — a `--where "cohort=2"` query selects
/// exactly the devices cohort worker 2 ingests.
#[test]
fn cohort_predicate_matches_fleet_router() {
    for n_cohorts in [1usize, 2, 4, 7, 64] {
        let router = CohortRouter::new(n_cohorts);
        for raw in (0..20_000u32).step_by(37).chain([u32::MAX, u32::MAX - 1]) {
            let device = DeviceId(raw);
            assert_eq!(
                cohort_of(device, n_cohorts as u32),
                router.cohort_of(device),
                "device {raw} over {n_cohorts} cohorts"
            );
        }
    }
}

/// `pool export --where` round-trip: analyzing the filtered pool equals
/// filtering at query time over the original campaigns — same datasets,
/// same pool-carried views, same metric payloads.
#[test]
fn filtered_pool_export_round_trips() {
    let dir = scratch_dir("export");
    let pool_path = dir.join("filtered.mtpool");
    let set = CampaignSet::simulate(SCALE, SEED);
    let expr = parse("wifi!=off && day>=1").expect("static expression");
    let opts = CompileOptions::default();

    set.save_pool_filtered(&pool_path, &expr, opts).expect("save filtered pool");
    let (loaded, views) = CampaignSet::load_pool(&pool_path).expect("load filtered pool");
    let loaded_ctxs = loaded.contexts_with(views);

    for (i, ds) in set.years.iter().enumerate() {
        let cols = DatasetColumns::build(ds);
        let rows = select_rows(&expr, ds, &cols, opts);
        let view = materialize(ds, &cols, &rows);
        // The exported dataset IS the filtered view...
        assert_eq!(loaded.years[i], view.ds, "year index {i}");
        // ...and the pool-served context computes the same figures as the
        // query path over the original.
        assert_eq!(
            evaluate_payload(&loaded_ctxs[i]),
            evaluate_payload(&view.context()),
            "year index {i}"
        );
    }
    // The update-retaining 2015 stream is filtered too.
    let cols = DatasetColumns::build(&set.update_2015);
    let rows = select_rows(&expr, &set.update_2015, &cols, opts);
    let view = materialize(&set.update_2015, &cols, &rows);
    assert_eq!(loaded.update_2015, view.ds);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The serve loop's live contract: queries evaluated against published
/// snapshots while ingest runs, and the final generation's payloads are
/// bit-identical to eager batch evaluation over the finished dataset.
#[test]
fn live_serve_final_generation_matches_batch() {
    use mobitrace_live::{run_live_campaign_observed, LiveOptions, SnapshotObserver};
    use mobitrace_sim::CampaignConfig;
    use std::sync::{Arc, Mutex};

    let mut cfg = CampaignConfig::scaled(Year::Y2015, 0.01).with_seed(SEED);
    cfg.days = 2;
    let qset = QuerySet {
        queries: vec![
            Query::unfiltered("all"),
            Query::parse("assoc", "wifi=assoc").expect("static expression"),
        ],
        opts: CompileOptions::default(),
    };
    let seen: Arc<Mutex<Vec<Vec<mobitrace_query::ServeRecord>>>> = Arc::default();
    let observer: SnapshotObserver = {
        let qset = qset.clone();
        let seen = Arc::clone(&seen);
        Box::new(move |snap, stats| {
            let recs = qset.evaluate(
                &snap.ds,
                &snap.index,
                &snap.cols,
                stats.compactions,
                watermark_minute(&snap.cols),
            );
            seen.lock().expect("seen lock").push(recs);
        })
    };
    let report = run_live_campaign_observed(&cfg, LiveOptions::default(), observer);
    assert!(report.divergence.is_none(), "live run diverged: {:?}", report.divergence);

    let seen = seen.lock().expect("seen lock");
    assert!(!seen.is_empty(), "observer saw no snapshot generations");
    let last = seen.last().expect("non-empty");
    assert_eq!(last.len(), 2);

    // The final observed snapshot is the finished campaign: its unfiltered
    // payload equals the batch pipeline's, its filtered payload equals an
    // eagerly filtered batch copy's.
    let ds = &report.finished.snapshot.ds;
    let batch = AnalysisContext::new(ds);
    assert_eq!(last[0].metrics, evaluate_payload(&batch));
    assert_eq!(last[0].rows, ds.bins.len());

    let expr = parse("wifi=assoc").expect("static expression");
    let rows = select_rows(&expr, ds, &batch.cols, CompileOptions::default());
    let view = materialize(ds, &batch.cols, &rows);
    assert_eq!(last[1].rows, rows.len());
    assert_eq!(last[1].metrics, evaluate_payload(&view.context()));

    // Every generation carried a watermark no later than the final one,
    // in non-decreasing order — the stream is monotone.
    let watermarks: Vec<_> = seen.iter().map(|recs| recs[0].watermark).collect();
    assert!(watermarks.windows(2).all(|w| w[0] <= w[1]), "watermarks regressed: {watermarks:?}");

    // JSONL shape: a serialized record exposes the documented keys.
    let line = serde_json::to_string(&last[1]).expect("serializable");
    for key in
        ["\"query\"", "\"where\"", "\"generation\"", "\"watermark\"", "\"rows\"", "\"metrics\""]
    {
        assert!(line.contains(key), "missing {key} in {line}");
    }

    // The index rebuilt for a rebuilt dataset must match a from-scratch
    // build (the serve layer never hands analysis a stale index).
    assert_eq!(view.index, DatasetIndex::build(&view.ds));
}
