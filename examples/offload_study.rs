//! WiFi-offloading deep dive: the paper's central question — how do users
//! split their traffic between cellular and WiFi, and how much more could
//! they offload?
//!
//! ```text
//! cargo run --example offload_study
//! ```

use mobitrace_core::availability::offload_potential;
use mobitrace_core::daily::TrafficClass;
use mobitrace_core::ratios::{wifi_traffic_ratio, wifi_user_ratio, ClassFilter};
use mobitrace_core::timeseries::venue_series;
use mobitrace_core::usertype::user_type_shares;
use mobitrace_core::{implications, AnalysisContext};
use mobitrace_model::Year;
use mobitrace_sim::{run_campaign, CampaignConfig};

fn main() {
    println!("=== WiFi offloading, 2013 → 2015 ===\n");
    for year in Year::ALL {
        let (ds, _) = run_campaign(&CampaignConfig::scaled(year, 0.08).with_seed(21));
        let ctx = AnalysisContext::new(&ds);

        let all = wifi_traffic_ratio(&ctx, ClassFilter::All);
        let heavy = wifi_traffic_ratio(&ctx, ClassFilter::Only(TrafficClass::Heavy));
        let light = wifi_traffic_ratio(&ctx, ClassFilter::Only(TrafficClass::Light));
        let users = wifi_user_ratio(&ctx, ClassFilter::All);
        let types = user_type_shares(&ctx.days);

        println!("{year}:");
        println!(
            "  WiFi-traffic ratio  all {:.2} / heavy {:.2} / light {:.2}",
            all.mean, heavy.mean, light.mean
        );
        println!("  WiFi-user ratio     {:.2}", users.mean);
        println!(
            "  user types          {:.0}% cellular-intensive, {:.0}% WiFi-intensive, {:.0}% mixed",
            types.cellular_intensive * 100.0,
            types.wifi_intensive * 100.0,
            types.mixed * 100.0
        );

        let venues = venue_series(&ds, &ctx.cols, &ctx.aps);
        println!(
            "  WiFi volume split   {:.1}% home / {:.1}% public / {:.1}% office",
            venues.shares.0 * 100.0,
            venues.shares.1 * 100.0,
            venues.shares.2 * 100.0
        );

        if year == Year::Y2015 {
            let pot = offload_potential(&ds, &ctx.cols);
            println!(
                "\n  §3.5 offload potential: {:.0}% of WiFi-available users encounter a strong\n  \
                 public AP; {:.0}% of their cellular download is offloadable (paper: 15–20%)",
                pot.devices_with_opportunity * 100.0,
                pot.offloadable_share * 100.0
            );
            let imp = implications::implications(&ctx.days, &venues);
            println!(
                "  §4.1 implications: WiFi:cell median ratio {:.2}; smartphones ≈ {:.0}% of\n  \
                 residential broadband volume; {:.0}% of a median home's downstream",
                imp.wifi_to_cell_ratio,
                imp.smartphone_share_of_rbb * 100.0,
                imp.smartphone_share_of_home * 100.0
            );
        }
        println!();
    }
}
