//! The measurement substrate standalone: device agents on their own
//! threads stream framed records through a lossy channel into the shared
//! collection server, concurrently — the deployment shape of the real
//! measurement system (§2), without the simulator.
//!
//! ```text
//! cargo run --example live_pipeline
//! ```

use crossbeam::channel;
use mobitrace_collector::{
    clean, CleanOptions, CollectionServer, DeviceAgent, FaultPlan, LossyTransport, Observation,
};
use mobitrace_model::{
    CampaignMeta, Carrier, CellId, DeviceId, DeviceInfo, Os, OsVersion, ScanSummary, SimTime,
    WifiState, Year, BINS_PER_DAY,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const N_DEVICES: u32 = 24;
const DAYS: u32 = 3;

fn main() {
    let server = Arc::new(CollectionServer::new());
    let (tx, rx) = channel::unbounded::<bytes::Bytes>();

    // Ingest thread: drains the channel into the server, like the real
    // collection endpoint.
    let ingest_server = server.clone();
    let ingester = std::thread::spawn(move || {
        let mut ok = 0u64;
        for frame in rx {
            if ingest_server.ingest(&frame).is_ok() {
                ok += 1;
            }
        }
        ok
    });

    // One thread per device: sample every 10 minutes, upload over a lossy
    // link, push deliveries into the channel.
    let mut handles = Vec::new();
    for dev in 0..N_DEVICES {
        let tx = tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = ChaCha8Rng::seed_from_u64(1000 + u64::from(dev));
            let mut agent = DeviceAgent::new(DeviceId(dev), Os::Android, OsVersion::new(4, 4));
            let mut link = LossyTransport::new(FaultPlan::mobile());
            for day in 0..DAYS {
                for bin in 0..BINS_PER_DAY {
                    let t = SimTime::from_day_bin(day, bin);
                    let awake = (36..140).contains(&bin);
                    let rx_wifi = if awake { rng.gen_range(0..2_000_000) } else { 0 };
                    agent.observe(&Observation {
                        time: t,
                        rx_3g: 0,
                        tx_3g: 0,
                        rx_lte: if awake { rng.gen_range(0..500_000) } else { 1000 },
                        tx_lte: 100,
                        rx_wifi,
                        tx_wifi: rx_wifi / 5,
                        wifi: WifiState::OnUnassociated,
                        scan: ScanSummary::default(),
                        apps: vec![],
                        geo: CellId::new(10, 10),
                        charging: !awake,
                        tethering: false,
                    });
                    agent.try_upload(&mut rng, t, &mut link);
                    for frame in link.deliver_due(t) {
                        tx.send(frame).expect("ingester alive");
                    }
                }
            }
            // Flush the cache and the channel at campaign end, advancing
            // the clock so backoff windows expire instead of spinning.
            let end = SimTime::from_day_bin(DAYS, 0);
            let mut k = 0u32;
            while agent.pending() > 0 {
                agent.try_upload(&mut rng, end.plus_minutes(k * 10), &mut link);
                k += 1;
            }
            for frame in link.drain() {
                tx.send(frame).expect("ingester alive");
            }
            (agent.records_made, agent.retries)
        }));
    }
    drop(tx);

    let mut made = 0u64;
    let mut retries = 0u64;
    for h in handles {
        let (m, r) = h.join().expect("device thread");
        made += m;
        retries += r;
    }
    let ingested = ingester.join().expect("ingest thread");
    let stats = server.stats();
    println!(
        "{N_DEVICES} agents made {made} records; {retries} upload retries; \
         server ingested {ingested} frames ({} rejected, {} duplicates)",
        stats.rejected, stats.duplicates
    );

    let server = Arc::try_unwrap(server).expect("all threads joined");
    let records = server.into_records();
    let meta = CampaignMeta {
        year: Year::Y2014,
        start: Year::Y2014.campaign_start(),
        days: DAYS,
        seed: 0,
    };
    let devices = (0..N_DEVICES)
        .map(|i| DeviceInfo {
            device: DeviceId(i),
            os: Os::Android,
            carrier: Carrier::A,
            recruited: true,
            survey: None,
            truth: None,
        })
        .collect();
    let (ds, cstats) = clean(meta, devices, &records, CleanOptions::default());
    ds.validate().expect("consistent dataset");
    println!(
        "cleaned dataset: {} bins, {} sequence gaps detected, total RX {}",
        ds.bins.len(),
        cstats.gaps,
        ds.total_rx()
    );
}
