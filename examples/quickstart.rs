//! Quickstart: simulate one measurement campaign and read off the headline
//! statistics of the IMC'15 study.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mobitrace_core::ratios::{wifi_traffic_ratio, ClassFilter};
use mobitrace_core::{volume, AnalysisContext};
use mobitrace_model::Year;
use mobitrace_sim::{run_campaign, CampaignConfig};

fn main() {
    // A 10%-scale 2015 campaign: ~160 devices sampled every 10 minutes
    // for 25 days, streamed through the full agent → lossy transport →
    // server → cleaning pipeline.
    let config = CampaignConfig::scaled(Year::Y2015, 0.1).with_seed(7);
    println!(
        "simulating the {} campaign with {} users for {} days...",
        config.year, config.n_users, config.days
    );
    let (dataset, summary) = run_campaign(&config);
    dataset.validate().expect("pipeline produces a consistent dataset");
    println!(
        "  {} bin records from {} devices ({} Android / {} iOS), {} unique APs",
        dataset.bins.len(),
        dataset.devices.len(),
        summary.n_android,
        summary.n_ios,
        dataset.aps.len()
    );
    println!(
        "  upload pipeline: {} frames ingested, {} rejected (corruption), {} duplicates dropped",
        summary.ingest.frames, summary.ingest.rejected, summary.ingest.duplicates
    );

    // The analysis context precomputes per-user-day volumes, the
    // home/public/office AP classification and inferred home locations.
    let ctx = AnalysisContext::new(&dataset);

    let t = volume::volume_table(&ctx.days);
    println!("\ndaily download per user (paper 2015: median 126.5 MB, mean 239.5 MB):");
    println!("  all:  median {:6.1} MB   mean {:6.1} MB", t.all.median_mb, t.all.mean_mb);
    println!("  cell: median {:6.1} MB   mean {:6.1} MB", t.cell.median_mb, t.cell.mean_mb);
    println!("  wifi: median {:6.1} MB   mean {:6.1} MB", t.wifi.median_mb, t.wifi.mean_mb);

    let ratio = wifi_traffic_ratio(&ctx, ClassFilter::All);
    println!("\nmean WiFi-traffic ratio: {:.2} (paper 2015: 0.71)", ratio.mean);

    let counts = &ctx.aps.counts;
    println!(
        "estimated APs: {} home / {} public / {} other (incl. {} office)",
        counts.home, counts.public, counts.other, counts.office
    );
    println!(
        "inferred-home-AP share: {:.0}% (paper 2015: 79%)",
        ctx.aps.home_of.len() as f64 / dataset.devices.len() as f64 * 100.0
    );
}
