//! The iOS 8.2 flash crowd (§3.7): a 565 MB WiFi-only update lands in the
//! middle of the 2015 campaign. Who updates, how fast, and what do users
//! without home WiFi do?
//!
//! ```text
//! cargo run --example update_flashcrowd
//! ```

use mobitrace_collector::CleanOptions;
use mobitrace_core::apclass;
use mobitrace_core::update::update_analysis;
use mobitrace_model::Year;
use mobitrace_sim::campaign::run_campaign_opts;
use mobitrace_sim::CampaignConfig;

fn main() {
    let cfg = CampaignConfig::scaled(Year::Y2015, 0.2).with_seed(88);
    println!(
        "simulating the 2015 campaign ({} users, {} days; iOS 8.2 released on day 10)...",
        cfg.n_users, cfg.days
    );
    // Keep the update days in the dataset — that's what this analysis is
    // about (the paper *removes* them from every other analysis).
    let opts = CleanOptions { remove_update_days: false, ..CleanOptions::default() };
    let (ds, _) = run_campaign_opts(&cfg, opts);

    let cls = apclass::classify(&ds);
    let a = update_analysis(&ds, &cls, 10);

    println!("\n{} of {} iOS devices updated within the window", a.updates.len(), a.ios_devices);
    println!("  adoption: {:.0}% (paper: 58%)", a.adoption * 100.0);
    println!(
        "  with home AP: {:.0}%   without: {:.0}% (paper: 14%)",
        a.adoption_home * 100.0,
        a.adoption_no_home * 100.0
    );
    println!(
        "  median delay: {:.1} days with home AP, {:.1} without (paper gap: 3.5 days)",
        a.median_delay_home, a.median_delay_no_home
    );
    println!(
        "  updaters without home APs went via {} public and {} office APs",
        a.no_home_via.0, a.no_home_via.1
    );

    // Day-by-day adoption curve.
    let cdf = a.timing_cdf(10, false);
    println!("\nadoption by day since release:");
    for day in 0..14 {
        let share = cdf
            .iter()
            .take_while(|(d, _)| *d <= f64::from(day) + 1.0)
            .last()
            .map(|(_, c)| *c)
            .unwrap_or(0.0);
        let bar = "#".repeat((share * 40.0) as usize);
        println!("  day {day:>2}: {:>5.1}% {bar}", share * a.adoption * 100.0);
    }
}
