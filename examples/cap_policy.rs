//! Soft-bandwidth-cap what-if (§3.8): rerun the 2014 campaign under three
//! cap regimes — the historical 1 GB/3-day policy, the relaxed 2015
//! policy, and no cap at all — and compare the Fig. 19 suppression gap.
//! This exercises the policy engine as a *mechanism*, not a replay.
//!
//! ```text
//! cargo run --example cap_policy
//! ```

use mobitrace_cellular::CapPolicy;
use mobitrace_core::cap::cap_analysis;
use mobitrace_core::daily::user_days;
use mobitrace_core::stats::mean;
use mobitrace_model::{ByteCount, DataRate, Year};
use mobitrace_sim::{run_campaign, CampaignConfig};

fn main() {
    println!("=== 2014 campaign under three cap regimes ===\n");
    let regimes: [(&str, Option<CapPolicy>); 3] = [
        ("historical (1 GB / 3 days → 128 kbps)", None),
        ("relaxed 2015 (3 GB / 3 days → 300 kbps)", Some(CapPolicy::relaxed_2015())),
        (
            "no cap (trigger at 1 TB)",
            Some(CapPolicy::custom(
                ByteCount::gb(1000),
                3,
                DataRate::mbps(100.0),
                mobitrace_cellular::PeakHours::standard(),
            )),
        ),
    ];
    for (label, policy) in regimes {
        let mut cfg = CampaignConfig::scaled(Year::Y2014, 0.15).with_seed(33);
        cfg.cap_override = policy;
        let (ds, _) = run_campaign(&cfg);
        let days = user_days(&ds);
        let a = cap_analysis(&days);
        let cell_mean_mb = mean(&days.iter().map(|d| d.rx_cell() as f64 / 1e6).collect::<Vec<_>>());
        println!("{label}:");
        println!(
            "  potentially-capped users: {:.1}%   mean cellular RX {:.1} MB/day",
            a.capped_user_share * 100.0,
            cell_mean_mb
        );
        if a.capped_ratios.is_empty() {
            println!("  no capped user-days — no suppression to measure\n");
        } else {
            println!(
                "  capped-vs-others median gap: {:.2}   capped days below half trailing mean: {:.0}%\n",
                a.median_gap,
                a.capped_below_half() * 100.0
            );
        }
    }
    println!(
        "The historical policy shows the paper's Fig. 19 gap; relaxing it shrinks\n\
         the gap (the 2014→2015 change the paper observes), and removing the cap\n\
         erases the suppression while raising mean cellular volume."
    );
}
